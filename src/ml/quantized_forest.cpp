#include "ml/quantized_forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "ml/decision_tree.hpp"
#include "ml/parallel_for.hpp"
#include "obs/metrics.hpp"

namespace mfpa::ml {
namespace {

// Why `c < q` is exactly `value <= threshold`: cuts are strictly
// ascending, c = #(cuts < value) and q = #(cuts <= threshold). If
// value <= cuts[q-1] then every cut below value lies below index q-1, so
// c <= q-1 < q; if value > cuts[q-1] then cuts[0..q-1] are all below
// value, so c >= q. Hence c < q  <=>  value <= cuts[q-1], and when the
// threshold is itself a cut, cuts[q-1] == threshold. q == 0 (threshold
// below every cut after snapping) makes the test unsatisfiable — every row
// correctly descends right. NaN encodes as 255, and q <= 255 can only
// reach 255 when a feature carries the full 255 cuts, in which case code
// 255 also means "above every cut" — right in both readings.

/// Scoring/compile instruments, cached per thread exactly like
/// flat_forest.cpp's (see the commentary there).
struct QuantMetrics {
  obs::Counter* compiles = nullptr;
  obs::Counter* rows_scored = nullptr;
  obs::Gauge* nodes = nullptr;
  obs::Gauge* exact = nullptr;
  obs::HistogramMetric* compile_seconds = nullptr;
  obs::HistogramMetric* batch_seconds = nullptr;
};

const QuantMetrics& quant_metrics() {
  thread_local obs::MetricsRegistry* cached_registry = nullptr;
  thread_local std::uint64_t cached_generation = 0;
  thread_local QuantMetrics metrics;
  auto& reg = obs::registry();
  if (&reg != cached_registry || reg.generation() != cached_generation) {
    metrics.compiles = &reg.counter("mfpa_quant_compiles_total");
    metrics.rows_scored = &reg.counter("mfpa_quant_rows_scored_total");
    metrics.nodes = &reg.gauge("mfpa_quant_nodes");
    metrics.exact = &reg.gauge("mfpa_quant_exact");
    metrics.compile_seconds =
        &reg.histogram("mfpa_quant_compile_seconds", 0.0, 10.0, 256);
    metrics.batch_seconds =
        &reg.histogram("mfpa_quant_batch_seconds", 0.0, 1.0, 512);
    cached_registry = &reg;
    cached_generation = reg.generation();
  }
  return metrics;
}

/// Same row blocking as the float kernel (see flat_forest.cpp): the uint8
/// code block for 96 rows is under 5 KB even at 45 features, so it sits in
/// L1 beside one tree's node arrays.
constexpr std::size_t kRowBlock = 96;

std::size_t max_split_feature(std::span<const RegressionTree> trees) {
  std::size_t max_feat = 0;
  for (const auto& tree : trees) {
    for (const auto& node : tree.nodes()) {
      if (node.feature >= 0) {
        max_feat =
            std::max(max_feat, static_cast<std::size_t>(node.feature) + 1);
      }
    }
  }
  return max_feat;
}

void validate(std::span<const RegressionTree> trees) {
  if (trees.empty()) {
    throw std::invalid_argument("QuantizedForest: empty ensemble");
  }
  std::size_t total = 0;
  for (const auto& tree : trees) {
    if (!tree.fitted()) {
      throw std::invalid_argument("QuantizedForest: unfitted tree");
    }
    total += tree.nodes().size();
  }
  if (total >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    throw std::invalid_argument("QuantizedForest: ensemble too large");
  }
}

}  // namespace

QuantizedForest QuantizedForest::compile(std::span<const RegressionTree> trees,
                                         Output output, double per_tree_scale,
                                         double base) {
  validate(trees);
  // Cut arrays from the ensemble's own split thresholds: every distinct
  // threshold becomes a cut, so quantization is exact by construction.
  std::vector<std::vector<double>> cuts(max_split_feature(trees));
  for (const auto& tree : trees) {
    for (const auto& node : tree.nodes()) {
      if (node.feature >= 0) {
        cuts[static_cast<std::size_t>(node.feature)].push_back(node.threshold);
      }
    }
  }
  for (std::size_t f = 0; f < cuts.size(); ++f) {
    auto& c = cuts[f];
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    if (c.size() > 255) {
      throw std::invalid_argument(
          "QuantizedForest: feature " + std::to_string(f) + " has " +
          std::to_string(c.size()) +
          " distinct thresholds (max 255); not quantizable");
    }
  }
  return build(trees, std::move(cuts), output, per_tree_scale, base);
}

QuantizedForest QuantizedForest::compile_binned(
    std::span<const RegressionTree> trees, const data::BinnedMatrix& bins,
    Output output, double per_tree_scale, double base) {
  validate(trees);
  const std::size_t needed = max_split_feature(trees);
  if (bins.cols() < needed) {
    throw std::invalid_argument(
        "QuantizedForest::compile_binned: binning covers " +
        std::to_string(bins.cols()) + " features, ensemble splits on " +
        std::to_string(needed));
  }
  std::vector<std::vector<double>> cuts(needed);
  for (std::size_t f = 0; f < needed; ++f) cuts[f] = bins.cuts(f);
  return build(trees, std::move(cuts), output, per_tree_scale, base);
}

QuantizedForest QuantizedForest::build(std::span<const RegressionTree> trees,
                                       std::vector<std::vector<double>> cuts,
                                       Output output, double per_tree_scale,
                                       double base) {
  const auto& metrics = quant_metrics();
  obs::ScopedTimer timer(*metrics.compile_seconds);

  std::size_t total = 0;
  for (const auto& tree : trees) total += tree.nodes().size();

  QuantizedForest out;
  out.output_ = output;
  out.per_tree_scale_ = per_tree_scale;
  out.base_ = base;
  out.inv_trees_ = 1.0 / static_cast<double>(trees.size());
  out.cuts_ = std::move(cuts);
  out.feat_.resize(total);
  out.code_.resize(total);
  out.left_.resize(total);
  out.roots_.reserve(trees.size());

  // Breadth-first renumbering with adjacent children, exactly like
  // FlatForest::compile; leaves store ~index into the hoisted leaf-value
  // array and self-loop so the lockstep kernel can keep stepping them.
  std::vector<std::pair<std::int32_t, std::int32_t>> queue;  // (src, dst)
  std::int32_t next = 0;
  for (const auto& tree : trees) {
    const auto& nodes = tree.nodes();
    out.roots_.push_back(next);
    queue.clear();
    queue.emplace_back(0, next++);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const auto [src, dst] = queue[head];
      const TreeNode& n = nodes[static_cast<std::size_t>(src)];
      if (n.feature < 0) {
        out.feat_[static_cast<std::size_t>(dst)] =
            ~static_cast<std::int32_t>(out.leaf_vals_.size());
        out.code_[static_cast<std::size_t>(dst)] = 0;  // never compared
        out.left_[static_cast<std::size_t>(dst)] = dst;  // self-loop
        out.leaf_vals_.push_back(n.value);
      } else {
        const auto& fcuts = out.cuts_[static_cast<std::size_t>(n.feature)];
        // q = #cuts <= threshold. A threshold found among the cuts is
        // exact; one between cuts is snapped down (exact_ drops).
        const std::size_t q =
            static_cast<std::size_t>(std::upper_bound(fcuts.begin(),
                                                      fcuts.end(),
                                                      n.threshold) -
                                     fcuts.begin());
        if (q == 0 || fcuts[q - 1] != n.threshold) out.exact_ = false;
        const std::int32_t l = next;
        next += 2;
        out.feat_[static_cast<std::size_t>(dst)] = n.feature;
        out.code_[static_cast<std::size_t>(dst)] =
            static_cast<std::uint8_t>(q);
        out.left_[static_cast<std::size_t>(dst)] = l;
        queue.emplace_back(n.left, l);
        queue.emplace_back(n.right, l + 1);
      }
    }
  }
  metrics.compiles->inc();
  metrics.nodes->set(static_cast<double>(total));
  metrics.exact->set(out.exact_ ? 1.0 : 0.0);
  return out;
}

std::size_t QuantizedForest::bytes() const noexcept {
  std::size_t cut_bytes = 0;
  for (const auto& c : cuts_) cut_bytes += c.size() * sizeof(double);
  return feat_.size() * sizeof(std::int32_t) + code_.size() +
         left_.size() * sizeof(std::int32_t) +
         roots_.size() * sizeof(std::int32_t) +
         leaf_vals_.size() * sizeof(double) + cut_bytes;
}

void QuantizedForest::accumulate_codes(const std::uint8_t* codes,
                                       std::size_t rows, std::size_t tree_lo,
                                       std::size_t tree_hi,
                                       double* acc) const {
  const std::int32_t* feat = feat_.data();
  const std::uint8_t* code = code_.data();
  const std::int32_t* left = left_.data();
  const double* leaf = leaf_vals_.data();
  const double scale = per_tree_scale_;
  const std::size_t stride = cuts_.size();
  // The uint8 transcription of the float kernel's sign-mask step: descend
  // left when c < q, right otherwise — which also sends NaN (code 255)
  // right, since q <= 255 never exceeds it. Lanes at a leaf clamp their
  // code index to 0 and keep their node.
  const auto step = [feat, code, left](std::int32_t n, std::int32_t f,
                                       const std::uint8_t* crow) noexcept {
    const std::int32_t keep = f >> 31;  // all-ones at a leaf, else zero
    const std::int32_t idx = f & ~keep;
    const std::int32_t next =
        left[n] + static_cast<std::int32_t>(crow[idx] >= code[n]);
    return (n & keep) | (next & ~keep);
  };
  for (std::size_t t = tree_lo; t < tree_hi; ++t) {
    const std::int32_t root = roots_[t];
    const std::int32_t root_feat = feat[root];
    std::size_t r = 0;
    if (root_feat < 0) {
      // Single-node tree: every row takes the root leaf.
      for (; r < rows; ++r) acc[r] += scale * leaf[~root_feat];
      continue;
    }
    // Eight rows in lockstep, two levels per iteration — the same ILP
    // structure as the float kernel (see flat_forest.cpp).
    for (; r + 8 <= rows; r += 8) {
      const std::uint8_t* c0 = codes + r * stride;
      const std::uint8_t* c1 = c0 + stride;
      const std::uint8_t* c2 = c1 + stride;
      const std::uint8_t* c3 = c2 + stride;
      const std::uint8_t* c4 = c3 + stride;
      const std::uint8_t* c5 = c4 + stride;
      const std::uint8_t* c6 = c5 + stride;
      const std::uint8_t* c7 = c6 + stride;
      std::int32_t n0 = root, n1 = root, n2 = root, n3 = root;
      std::int32_t n4 = root, n5 = root, n6 = root, n7 = root;
      std::int32_t f0 = root_feat, f1 = root_feat, f2 = root_feat;
      std::int32_t f3 = root_feat, f4 = root_feat, f5 = root_feat;
      std::int32_t f6 = root_feat, f7 = root_feat;
      for (;;) {
        n0 = step(n0, f0, c0);
        n1 = step(n1, f1, c1);
        n2 = step(n2, f2, c2);
        n3 = step(n3, f3, c3);
        n4 = step(n4, f4, c4);
        n5 = step(n5, f5, c5);
        n6 = step(n6, f6, c6);
        n7 = step(n7, f7, c7);
        f0 = feat[n0];
        f1 = feat[n1];
        f2 = feat[n2];
        f3 = feat[n3];
        f4 = feat[n4];
        f5 = feat[n5];
        f6 = feat[n6];
        f7 = feat[n7];
        n0 = step(n0, f0, c0);
        n1 = step(n1, f1, c1);
        n2 = step(n2, f2, c2);
        n3 = step(n3, f3, c3);
        n4 = step(n4, f4, c4);
        n5 = step(n5, f5, c5);
        n6 = step(n6, f6, c6);
        n7 = step(n7, f7, c7);
        f0 = feat[n0];
        f1 = feat[n1];
        f2 = feat[n2];
        f3 = feat[n3];
        f4 = feat[n4];
        f5 = feat[n5];
        f6 = feat[n6];
        f7 = feat[n7];
        const std::int32_t pending =
            f0 & f1 & f2 & f3 & f4 & f5 & f6 & f7;
        if (pending < 0) break;
      }
      acc[r + 0] += scale * leaf[~f0];
      acc[r + 1] += scale * leaf[~f1];
      acc[r + 2] += scale * leaf[~f2];
      acc[r + 3] += scale * leaf[~f3];
      acc[r + 4] += scale * leaf[~f4];
      acc[r + 5] += scale * leaf[~f5];
      acc[r + 6] += scale * leaf[~f6];
      acc[r + 7] += scale * leaf[~f7];
    }
    for (; r < rows; ++r) {
      const std::uint8_t* crow = codes + r * stride;
      std::int32_t n = root;
      std::int32_t f = root_feat;
      while (f >= 0) {
        n = left[n] + static_cast<std::int32_t>(crow[f] >= code[n]);
        f = feat[n];
      }
      acc[r] += scale * leaf[~f];
    }
  }
}

void QuantizedForest::finish_range(const double* acc, std::span<double> out,
                                   std::size_t lo, std::size_t hi) const {
  // Identical finishers to FlatForest::finish_range, so the quantized
  // probabilities match the float paths bit-for-bit whenever the descend
  // decisions match.
  if (output_ == Output::kMeanClamp) {
    for (std::size_t r = lo; r < hi; ++r) {
      out[r] = std::clamp(acc[r - lo] * inv_trees_, 0.0, 1.0);
    }
  } else {
    for (std::size_t r = lo; r < hi; ++r) {
      out[r] = stable_sigmoid(acc[r - lo]);
    }
  }
}

void QuantizedForest::predict_into(const data::Matrix& X,
                                   std::span<double> out,
                                   std::size_t threads) const {
  if (empty()) {
    throw std::logic_error("QuantizedForest: predict on an empty forest");
  }
  if (out.size() != X.rows()) {
    throw std::invalid_argument("QuantizedForest::predict_into: size mismatch");
  }
  if (X.cols() < cuts_.size()) {
    throw std::invalid_argument(
        "QuantizedForest::predict_into: matrix has fewer columns than the "
        "ensemble's feature space");
  }
  const auto& metrics = quant_metrics();
  obs::ScopedTimer timer(*metrics.batch_seconds);
  const std::size_t nf = cuts_.size();
  parallel_for_blocks(X.rows(), threads, [&](std::size_t lo, std::size_t hi) {
    std::vector<std::uint8_t> codes(kRowBlock * nf);
    double acc[kRowBlock];
    for (std::size_t block = lo; block < hi; block += kRowBlock) {
      const std::size_t block_hi = std::min(block + kRowBlock, hi);
      // Encode the block once: feature-outer so one cut array's binary
      // search stays hot across the block's rows.
      for (std::size_t f = 0; f < nf; ++f) {
        const auto& fcuts = cuts_[f];
        for (std::size_t r = block; r < block_hi; ++r) {
          const double v = X(r, f);
          codes[(r - block) * nf + f] =
              std::isnan(v)
                  ? kNanCode
                  : static_cast<std::uint8_t>(
                        std::lower_bound(fcuts.begin(), fcuts.end(), v) -
                        fcuts.begin());
        }
      }
      std::fill(acc, acc + (block_hi - block), base_);
      accumulate_codes(codes.data(), block_hi - block, 0, roots_.size(), acc);
      finish_range(acc, out, block, block_hi);
    }
  });
  metrics.rows_scored->inc(X.rows());
}

void QuantizedForest::predict_into(const data::BinnedMatrix& B,
                                   std::span<double> out,
                                   std::size_t threads) const {
  if (empty()) {
    throw std::logic_error("QuantizedForest: predict on an empty forest");
  }
  if (out.size() != B.rows()) {
    throw std::invalid_argument("QuantizedForest::predict_into: size mismatch");
  }
  if (B.cols() < cuts_.size()) {
    throw std::invalid_argument(
        "QuantizedForest::predict_into: binning has fewer columns than the "
        "ensemble's feature space");
  }
  // Codes are only meaningful under the cuts they were produced with;
  // refuse a binning whose edges differ from compile time's.
  for (std::size_t f = 0; f < cuts_.size(); ++f) {
    if (B.cuts(f) != cuts_[f]) {
      throw std::invalid_argument(
          "QuantizedForest::predict_into: binning cuts differ from the "
          "compiled cuts at feature " + std::to_string(f));
    }
  }
  const auto& metrics = quant_metrics();
  obs::ScopedTimer timer(*metrics.batch_seconds);
  const std::size_t nf = cuts_.size();
  parallel_for_blocks(B.rows(), threads, [&](std::size_t lo, std::size_t hi) {
    std::vector<std::uint8_t> codes(kRowBlock * nf);
    double acc[kRowBlock];
    for (std::size_t block = lo; block < hi; block += kRowBlock) {
      const std::size_t block_hi = std::min(block + kRowBlock, hi);
      // Transpose the column-major codes into a row-major block so the
      // lockstep kernel reads each lane's row contiguously.
      for (std::size_t f = 0; f < nf; ++f) {
        const std::uint8_t* col = B.codes_ptr(f);
        for (std::size_t r = block; r < block_hi; ++r) {
          codes[(r - block) * nf + f] = col[r];
        }
      }
      std::fill(acc, acc + (block_hi - block), base_);
      accumulate_codes(codes.data(), block_hi - block, 0, roots_.size(), acc);
      finish_range(acc, out, block, block_hi);
    }
  });
  metrics.rows_scored->inc(B.rows());
}

std::vector<double> QuantizedForest::predict(const data::Matrix& X,
                                             std::size_t threads) const {
  std::vector<double> out(X.rows());
  predict_into(X, out, threads);
  return out;
}

std::vector<double> QuantizedForest::predict(const data::BinnedMatrix& B,
                                             std::size_t threads) const {
  std::vector<double> out(B.rows());
  predict_into(B, out, threads);
  return out;
}

}  // namespace mfpa::ml
