#include "ml/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace mfpa::ml {

double ConfusionMatrix::accuracy() const noexcept {
  const std::size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(n);
}

double ConfusionMatrix::tpr() const noexcept {
  const std::size_t p = positives();
  return p == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(p);
}

double ConfusionMatrix::fpr() const noexcept {
  const std::size_t n = negatives();
  return n == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const noexcept {
  const std::size_t flagged = tp + fp;
  return flagged == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(flagged);
}

double ConfusionMatrix::f1() const noexcept {
  const double p = precision();
  const double r = tpr();
  return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::pdr() const noexcept {
  const std::size_t n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp + fp) / static_cast<double>(n);
}

ConfusionMatrix confusion_matrix(std::span<const int> y_true,
                                 std::span<const int> y_pred) {
  if (y_true.size() != y_pred.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 1) {
      y_pred[i] == 1 ? ++cm.tp : ++cm.fn;
    } else {
      y_pred[i] == 1 ? ++cm.fp : ++cm.tn;
    }
  }
  return cm;
}

ConfusionMatrix confusion_at(std::span<const int> y_true,
                             std::span<const double> scores, double threshold) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("confusion_at: size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    if (y_true[i] == 1) {
      pred ? ++cm.tp : ++cm.fn;
    } else {
      pred ? ++cm.fp : ++cm.tn;
    }
  }
  return cm;
}

std::vector<RocPoint> roc_curve(std::span<const int> y_true,
                                std::span<const double> scores) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("roc_curve: size mismatch");
  }
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::size_t pos = 0, neg = 0;
  for (int label : y_true) label == 1 ? ++pos : ++neg;

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    // Advance across ties so each threshold appears once.
    const double threshold = scores[order[i]];
    while (i < order.size() && scores[order[i]] == threshold) {
      y_true[order[i]] == 1 ? ++tp : ++fp;
      ++i;
    }
    curve.push_back({neg ? static_cast<double>(fp) / static_cast<double>(neg) : 0.0,
                     pos ? static_cast<double>(tp) / static_cast<double>(pos) : 0.0,
                     threshold});
  }
  if (curve.back().fpr != 1.0 || curve.back().tpr != 1.0) {
    curve.push_back({1.0, 1.0, -std::numeric_limits<double>::infinity()});
  }
  return curve;
}

double auc(std::span<const int> y_true, std::span<const double> scores) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("auc: size mismatch");
  }
  // Mann-Whitney U with midranks for ties.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  double rank_sum_pos = 0.0;
  std::size_t pos = 0, neg = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (std::size_t k = i; k < j; ++k) {
      if (y_true[order[k]] == 1) {
        rank_sum_pos += midrank;
        ++pos;
      } else {
        ++neg;
      }
    }
    i = j;
  }
  if (pos == 0 || neg == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(pos) * (static_cast<double>(pos) + 1.0) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double best_youden_threshold(std::span<const int> y_true,
                             std::span<const double> scores) {
  return best_weighted_youden_threshold(y_true, scores, 1.0);
}

double best_weighted_youden_threshold(std::span<const int> y_true,
                                      std::span<const double> scores,
                                      double fpr_weight) {
  const auto curve = roc_curve(y_true, scores);
  double best_j = -std::numeric_limits<double>::infinity();
  double best_threshold = 0.5;
  for (const auto& p : curve) {
    if (!std::isfinite(p.threshold)) continue;
    const double j = p.tpr - fpr_weight * p.fpr;
    if (j > best_j) {
      best_j = j;
      best_threshold = p.threshold;
    }
  }
  return best_threshold;
}

double threshold_for_fpr(std::span<const int> y_true,
                         std::span<const double> scores, double max_fpr) {
  const auto curve = roc_curve(y_true, scores);
  // Curve is ordered by decreasing threshold, i.e. increasing FPR; pick the
  // most permissive threshold still within budget.
  double best = 0.5;
  bool found = false;
  for (const auto& p : curve) {
    if (!std::isfinite(p.threshold)) continue;
    if (p.fpr <= max_fpr) {
      best = p.threshold;
      found = true;
    }
  }
  return found ? best : 0.5;
}

std::vector<PrPoint> pr_curve(std::span<const int> y_true,
                              std::span<const double> scores) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("pr_curve: size mismatch");
  }
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::size_t pos = 0;
  for (int label : y_true) pos += label == 1;

  std::vector<PrPoint> curve;
  std::size_t tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    const double threshold = scores[order[i]];
    while (i < order.size() && scores[order[i]] == threshold) {
      y_true[order[i]] == 1 ? ++tp : ++fp;
      ++i;
    }
    const double recall =
        pos ? static_cast<double>(tp) / static_cast<double>(pos) : 0.0;
    const double precision =
        (tp + fp) ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 1.0;
    curve.push_back({recall, precision, threshold});
  }
  return curve;
}

double average_precision(std::span<const int> y_true,
                         std::span<const double> scores) {
  const auto curve = pr_curve(y_true, scores);
  double ap = 0.0;
  double prev_recall = 0.0;
  for (const auto& p : curve) {
    ap += (p.recall - prev_recall) * p.precision;
    prev_recall = p.recall;
  }
  return ap;
}

double brier_score(std::span<const int> y_true,
                   std::span<const double> scores) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("brier_score: size mismatch");
  }
  if (y_true.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double err = scores[i] - static_cast<double>(y_true[i]);
    total += err * err;
  }
  return total / static_cast<double>(y_true.size());
}

std::string summarize(const ConfusionMatrix& cm) {
  std::ostringstream ss;
  ss << "TPR=" << format_percent(cm.tpr()) << " FPR=" << format_percent(cm.fpr())
     << " ACC=" << format_percent(cm.accuracy())
     << " PDR=" << format_percent(cm.pdr()) << " (TP=" << cm.tp
     << " FP=" << cm.fp << " TN=" << cm.tn << " FN=" << cm.fn << ")";
  return ss.str();
}

}  // namespace mfpa::ml
