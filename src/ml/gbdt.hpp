// Gradient-boosted decision trees with logistic loss and Newton leaf values
// (XGBoost-style second-order boosting; histogram splits by default).
#pragma once

#include "ml/binned_support.hpp"
#include "ml/decision_tree.hpp"
#include "ml/flat_forest.hpp"
#include "ml/model.hpp"

#include <memory>
#include <vector>

namespace mfpa::ml {

/// Hyperparams: "n_rounds" (80), "learning_rate" (0.2), "max_depth" (5),
/// "min_samples_leaf" (8), "lambda" (1.0), "subsample" (0.9), "seed" (1),
/// "threads" (1; 0 = hardware, parallelizes per-round score updates and
/// predict_proba over rows, thread-count-invariant), "split_method"
/// (0 = exact, 1 = hist; default 1), "max_bins" (255). With the hist path
/// the feature matrix is binned once per fit and shared by every round.
/// After compile(), predict_proba serves bit-identical probabilities from
/// the flattened ensemble (see ml/flat_forest.hpp).
class GbdtClassifier final : public Classifier,
                             public BinnedFitSupport,
                             public CompiledInference {
 public:
  explicit GbdtClassifier(Hyperparams params = {});

  void fit(const Matrix& X, const std::vector<int>& y) override;
  std::vector<double> predict_proba(const Matrix& X) const override;
  std::string name() const override { return "GBDT"; }
  std::unique_ptr<Classifier> clone_unfitted() const override;
  const Hyperparams& hyperparams() const override { return params_; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  std::size_t round_count() const noexcept { return trees_.size(); }

  /// Gain-weighted feature importance, normalized to sum 1.
  std::vector<double> feature_importance() const;

  /// BinnedFitSupport: reuse a precomputed binning of the next fit matrix.
  void set_shared_bins(
      std::shared_ptr<const data::BinnedMatrix> bins) override {
    shared_bins_ = std::move(bins);
  }

  /// CompiledInference: flatten the fitted booster; fit()/load_state()
  /// invalidate the compiled forms.
  bool compile() override;
  const FlatForest* flat() const noexcept override { return flat_.get(); }

  /// CompiledInference: quantize the fitted booster against its own
  /// thresholds (bit-identical; see ml/quantized_forest.hpp). Returns false
  /// when unfitted or some feature exceeds 255 distinct thresholds (only
  /// possible for exact-split training). predict_proba prefers this path.
  bool compile_quantized() override;
  const QuantizedForest* quantized() const noexcept override {
    return quant_.get();
  }

 private:
  Hyperparams params_;
  std::vector<RegressionTree> trees_;
  double base_score_ = 0.0;  ///< log-odds prior
  double learning_rate_ = 0.2;
  std::size_t n_features_ = 0;
  std::shared_ptr<const data::BinnedMatrix> shared_bins_;
  std::shared_ptr<const FlatForest> flat_;
  std::shared_ptr<const QuantizedForest> quant_;

  double raw_score_row(std::span<const double> row) const;
};

}  // namespace mfpa::ml
