// Evaluation metrics used throughout the paper: confusion matrix, accuracy,
// TPR, FPR, the paper's PDR (positive detection rate), ROC curves, and AUC.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mfpa::ml {

/// Binary confusion counts.
struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  std::size_t total() const noexcept { return tp + fp + tn + fn; }
  std::size_t positives() const noexcept { return tp + fn; }
  std::size_t negatives() const noexcept { return fp + tn; }

  /// ACC = (TP+TN)/all.
  double accuracy() const noexcept;
  /// TPR = TP/(TP+FN) (recall); 0 if no positives.
  double tpr() const noexcept;
  /// FPR = FP/(FP+TN); 0 if no negatives.
  double fpr() const noexcept;
  /// TNR = TN/(TN+FP).
  double tnr() const noexcept { return 1.0 - fpr(); }
  /// Precision = TP/(TP+FP); 0 if nothing predicted positive.
  double precision() const noexcept;
  /// F1 = harmonic mean of precision and recall.
  double f1() const noexcept;
  /// PDR = (TP+FP)/all — the paper's "positive detection rate": the
  /// fraction of the population flagged positive (migration overhead proxy).
  double pdr() const noexcept;
};

/// Builds a confusion matrix from hard predictions.
ConfusionMatrix confusion_matrix(std::span<const int> y_true,
                                 std::span<const int> y_pred);

/// Builds a confusion matrix by thresholding scores at `threshold`.
ConfusionMatrix confusion_at(std::span<const int> y_true,
                             std::span<const double> scores, double threshold);

/// One ROC operating point.
struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

/// Full ROC curve (sorted by descending threshold, starting at (0,0) and
/// ending at (1,1)).
std::vector<RocPoint> roc_curve(std::span<const int> y_true,
                                std::span<const double> scores);

/// Area under the ROC curve via the Mann-Whitney U statistic (ties handled);
/// returns 0.5 when either class is absent.
double auc(std::span<const int> y_true, std::span<const double> scores);

/// Threshold maximizing Youden's J (TPR - FPR) on the given scores.
double best_youden_threshold(std::span<const int> y_true,
                             std::span<const double> scores);

/// Threshold maximizing TPR - fpr_weight * FPR: a false-positive-averse
/// operating point (proactive migration is costly, so deployments weight
/// false alarms more than misses).
double best_weighted_youden_threshold(std::span<const int> y_true,
                                      std::span<const double> scores,
                                      double fpr_weight);

/// Smallest threshold whose FPR does not exceed `max_fpr` (operating-point
/// selection the way a deployment would pick it); falls back to 0.5 when no
/// negatives are present.
double threshold_for_fpr(std::span<const int> y_true,
                         std::span<const double> scores, double max_fpr);

/// One precision-recall operating point.
struct PrPoint {
  double recall = 0.0;
  double precision = 1.0;
  double threshold = 0.0;
};

/// Precision-recall curve (descending thresholds, recall non-decreasing).
/// Useful for the heavily imbalanced failure-prediction regime where ROC
/// can look deceptively good.
std::vector<PrPoint> pr_curve(std::span<const int> y_true,
                              std::span<const double> scores);

/// Average precision (area under the PR curve via the step interpolation
/// sklearn uses); 0 when no positives are present.
double average_precision(std::span<const int> y_true,
                         std::span<const double> scores);

/// Brier score: mean squared error of the probability forecasts (lower is
/// better; 0.25 = uninformative 0.5 forecast on balanced data). A proper
/// scoring rule — measures calibration as well as discrimination.
double brier_score(std::span<const int> y_true, std::span<const double> scores);

/// Compact "TPR=..., FPR=..., ACC=..., PDR=..." string for logs.
std::string summarize(const ConfusionMatrix& cm);

}  // namespace mfpa::ml
