// Class-imbalance handling. The paper uses RandomUnderSampler to balance the
// (rare) faulty-drive samples against the healthy majority at a configurable
// negative:positive ratio (3:1 or 5:1).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace mfpa::ml {

/// Randomly under-samples the majority class.
class RandomUnderSampler {
 public:
  /// `ratio` = kept majority count / minority count (e.g. 3.0 keeps 3
  /// negatives per positive). Ratio <= 0 keeps everything.
  explicit RandomUnderSampler(double ratio = 3.0, std::uint64_t seed = 1)
      : ratio_(ratio), seed_(seed) {}

  /// Returns the kept row indices (all minority rows + sampled majority),
  /// in ascending order. Works for either direction of imbalance.
  std::vector<std::size_t> sample_indices(const std::vector<int>& y) const;

  /// Convenience: resampled copy of a dataset.
  data::Dataset resample(const data::Dataset& ds) const;

 private:
  double ratio_;
  std::uint64_t seed_;
};

}  // namespace mfpa::ml
