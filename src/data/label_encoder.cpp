#include "data/label_encoder.hpp"

#include <stdexcept>

namespace mfpa::data {

void LabelEncoder::fit(const std::vector<std::string>& values) {
  classes_.clear();
  index_.clear();
  partial_fit(values);
}

void LabelEncoder::partial_fit(const std::vector<std::string>& values) {
  for (const auto& v : values) {
    if (index_.emplace(v, classes_.size()).second) {
      classes_.push_back(v);
    }
  }
}

double LabelEncoder::transform_one(const std::string& value) const noexcept {
  const auto it = index_.find(value);
  return it == index_.end() ? unknown_code() : static_cast<double>(it->second);
}

std::vector<double> LabelEncoder::transform(
    const std::vector<std::string>& values) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (const auto& v : values) out.push_back(transform_one(v));
  return out;
}

const std::string& LabelEncoder::inverse_transform(std::size_t code) const {
  if (code >= classes_.size()) {
    throw std::out_of_range("LabelEncoder: invalid code");
  }
  return classes_[code];
}

}  // namespace mfpa::data
