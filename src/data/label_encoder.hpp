// Label encoding for categorical attributes. The paper encodes the
// FirmwareVersion string ("Label encoding technology is adopted to handle
// the firmware version that is a character variable", §III-C(1)).
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace mfpa::data {

/// Maps category strings to dense integer codes in first-seen order during
/// fit(); transform() of an unseen category returns `unknown_code()`.
class LabelEncoder {
 public:
  /// Learns the category set (first-seen order defines codes 0..K-1).
  void fit(const std::vector<std::string>& values);

  /// Adds categories incrementally, keeping existing codes stable.
  void partial_fit(const std::vector<std::string>& values);

  /// Code of one category; unknown categories map to unknown_code().
  double transform_one(const std::string& value) const noexcept;

  /// Codes for a batch of values.
  std::vector<double> transform(const std::vector<std::string>& values) const;

  /// Category for a code; throws std::out_of_range for an invalid code.
  const std::string& inverse_transform(std::size_t code) const;

  std::size_t num_classes() const noexcept { return classes_.size(); }
  bool contains(const std::string& value) const noexcept {
    return index_.contains(value);
  }

  /// Sentinel for categories never seen during fit (= num_classes()).
  double unknown_code() const noexcept {
    return static_cast<double>(classes_.size());
  }

  const std::vector<std::string>& classes() const noexcept { return classes_; }

 private:
  std::vector<std::string> classes_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace mfpa::data
