#include "data/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace mfpa::data {

void StandardScaler::fit(const Matrix& X) {
  const std::size_t n = X.rows();
  const std::size_t d = X.cols();
  means_.assign(d, 0.0);
  stds_.assign(d, 1.0);
  if (n == 0) return;
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = X.row(r);
    for (std::size_t c = 0; c < d; ++c) means_[c] += row[c];
  }
  for (auto& m : means_) m /= static_cast<double>(n);
  if (n < 2) return;
  std::vector<double> ss(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = X.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double dlt = row[c] - means_[c];
      ss[c] += dlt * dlt;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double var = ss[c] / static_cast<double>(n - 1);
    stds_[c] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& X) const {
  if (!fitted()) throw std::logic_error("StandardScaler: transform before fit");
  if (X.cols() != means_.size()) {
    throw std::logic_error("StandardScaler: column-count mismatch");
  }
  Matrix out(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto src = X.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < X.cols(); ++c) {
      dst[c] = (src[c] - means_[c]) / stds_[c];
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& X) {
  fit(X);
  return transform(X);
}

void StandardScaler::set_state(std::vector<double> means,
                               std::vector<double> stds) {
  if (means.size() != stds.size()) {
    throw std::invalid_argument("StandardScaler::set_state: size mismatch");
  }
  means_ = std::move(means);
  stds_ = std::move(stds);
}

void MinMaxScaler::fit(const Matrix& X) {
  const std::size_t d = X.cols();
  mins_.assign(d, 0.0);
  maxs_.assign(d, 1.0);
  if (X.rows() == 0) return;
  for (std::size_t c = 0; c < d; ++c) {
    mins_[c] = maxs_[c] = X(0, c);
  }
  for (std::size_t r = 1; r < X.rows(); ++r) {
    const auto row = X.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      mins_[c] = std::min(mins_[c], row[c]);
      maxs_[c] = std::max(maxs_[c], row[c]);
    }
  }
}

Matrix MinMaxScaler::transform(const Matrix& X) const {
  if (!fitted()) throw std::logic_error("MinMaxScaler: transform before fit");
  if (X.cols() != mins_.size()) {
    throw std::logic_error("MinMaxScaler: column-count mismatch");
  }
  Matrix out(X.rows(), X.cols());
  for (std::size_t r = 0; r < X.rows(); ++r) {
    const auto src = X.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < X.cols(); ++c) {
      const double span = maxs_[c] - mins_[c];
      dst[c] = span > 1e-12 ? (src[c] - mins_[c]) / span : 0.0;
    }
  }
  return out;
}

Matrix MinMaxScaler::fit_transform(const Matrix& X) {
  fit(X);
  return transform(X);
}

}  // namespace mfpa::data
