#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mfpa::data {

void Dataset::add(std::span<const double> features, int label, RowMeta row_meta) {
  X.add_row(features);
  y.push_back(label);
  meta.push_back(row_meta);
}

void Dataset::check_invariants() const {
  if (X.rows() != y.size() || y.size() != meta.size()) {
    throw std::logic_error("Dataset: row/label/meta size mismatch");
  }
  if (!feature_names.empty() && feature_names.size() != X.cols()) {
    throw std::logic_error("Dataset: feature-name arity mismatch");
  }
  for (int label : y) {
    if (label != 0 && label != 1) {
      throw std::logic_error("Dataset: labels must be binary");
    }
  }
}

std::size_t Dataset::positives() const noexcept {
  return static_cast<std::size_t>(std::count(y.begin(), y.end(), 1));
}

Dataset Dataset::select_rows(std::span<const std::size_t> indices) const {
  Dataset out;
  out.X = X.select_rows(indices);
  out.feature_names = feature_names;
  out.y.reserve(indices.size());
  out.meta.reserve(indices.size());
  for (std::size_t i : indices) {
    if (i >= size()) throw std::out_of_range("Dataset::select_rows: bad index");
    out.y.push_back(y[i]);
    out.meta.push_back(meta[i]);
  }
  return out;
}

std::size_t Dataset::feature_index(const std::string& name) const {
  const auto it = std::find(feature_names.begin(), feature_names.end(), name);
  if (it == feature_names.end()) {
    throw std::out_of_range("Dataset: no feature named '" + name + "'");
  }
  return static_cast<std::size_t>(it - feature_names.begin());
}

Dataset Dataset::select_features(const std::vector<std::string>& names) const {
  std::vector<std::size_t> cols;
  cols.reserve(names.size());
  for (const auto& n : names) cols.push_back(feature_index(n));
  Dataset out;
  out.X = X.select_columns(cols);
  out.y = y;
  out.meta = meta;
  out.feature_names = names;
  return out;
}

std::pair<Dataset, Dataset> Dataset::split_by_day(DayIndex cutoff) const {
  std::vector<std::size_t> first_idx, second_idx;
  for (std::size_t i = 0; i < size(); ++i) {
    (meta[i].day <= cutoff ? first_idx : second_idx).push_back(i);
  }
  return {select_rows(first_idx), select_rows(second_idx)};
}

Dataset Dataset::filter(
    const std::function<bool(const RowMeta&, int label)>& pred) const {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < size(); ++i) {
    if (pred(meta[i], y[i])) keep.push_back(i);
  }
  return select_rows(keep);
}

Dataset Dataset::sorted_by_time() const {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (meta[a].day != meta[b].day) return meta[a].day < meta[b].day;
    return meta[a].drive_id < meta[b].drive_id;
  });
  return select_rows(order);
}

void Dataset::append(const Dataset& other) {
  if (other.empty()) return;
  if (empty() && X.cols() == 0) {
    *this = other;
    return;
  }
  if (!feature_names.empty() && !other.feature_names.empty() &&
      feature_names != other.feature_names) {
    throw std::invalid_argument("Dataset::append: feature-name mismatch");
  }
  X.append(other.X);
  y.insert(y.end(), other.y.begin(), other.y.end());
  meta.insert(meta.end(), other.meta.begin(), other.meta.end());
}

}  // namespace mfpa::data
