// Column-major quantile-binned view of a Matrix for histogram tree training.
//
// Each feature is sketched once into at most 255 bins: a sorted copy of the
// column yields cut thresholds (adjacent-value midpoints, quantile-selected
// when the column has more distinct values than bins), and every cell is
// encoded as the uint8 index of its bin. Trees trained on the codes recover
// raw-value thresholds from the cut arrays, so a hist-trained tree is
// byte-compatible with the exact-path TreeNode format and predicts on raw
// doubles. The invariant that makes this exact rather than approximate on
// the training side: code(r, f) <= b  <=>  X(r, f) <= cut(f, b).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "data/matrix.hpp"

namespace mfpa::data {

/// Immutable binned encoding of a feature matrix. Value type; cheap to move.
/// Codes are stored column-major so per-feature histogram accumulation walks
/// contiguous memory.
class BinnedMatrix {
 public:
  /// Largest bin count whose codes fit a uint8.
  static constexpr std::size_t kMaxBins = 255;

  BinnedMatrix() = default;

  /// Sketches every feature of X into at most `max_bins` bins
  /// (2 <= max_bins <= 255). Throws std::invalid_argument on an empty
  /// matrix or an out-of-range bin count.
  explicit BinnedMatrix(const Matrix& X, std::size_t max_bins = kMaxBins);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Number of bins feature f occupies (cuts(f).size() + 1; 1 if constant).
  std::size_t n_bins(std::size_t f) const noexcept {
    return edges_[f].size() + 1;
  }

  /// Bin index of row r under feature f.
  std::uint8_t code(std::size_t r, std::size_t f) const noexcept {
    return codes_[f * rows_ + r];
  }

  /// Contiguous code column for feature f (length rows()).
  const std::uint8_t* column(std::size_t f) const noexcept {
    return codes_.data() + f * rows_;
  }

  /// column() with a debug-build bounds check — the form the quantized
  /// inference kernel uses when transposing code blocks.
  const std::uint8_t* codes_ptr(std::size_t f) const noexcept {
    assert(f < cols_ && "BinnedMatrix::codes_ptr: feature out of range");
    return codes_.data() + f * rows_;
  }

  /// Row-major gather of rows [row_lo, row_hi): writes
  /// (row_hi - row_lo) * cols() codes into out, row r's codes contiguous at
  /// out + (r - row_lo) * cols(). Debug-asserts the range is within rows().
  void row_codes_into(std::size_t row_lo, std::size_t row_hi,
                      std::uint8_t* out) const noexcept;

  /// Ascending raw-value thresholds between bins of feature f
  /// (size n_bins(f) - 1). Splitting "code <= b" is identical to the raw
  /// test "value <= cut(f, b)".
  const std::vector<double>& cuts(std::size_t f) const noexcept {
    return edges_[f];
  }
  double cut(std::size_t f, std::size_t b) const noexcept {
    return edges_[f][b];
  }

  /// Same bin edges, subset of rows in the given order — cheap (copies uint8
  /// codes only; no re-sketching). Throws std::out_of_range on a bad index.
  BinnedMatrix select_rows(std::span<const std::size_t> indices) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> codes_;         ///< column-major, cols x rows
  std::vector<std::vector<double>> edges_;  ///< per-feature ascending cuts
};

}  // namespace mfpa::data
