// Feature scaling. SVM, logistic regression and the CNN_LSTM are trained on
// standardized features; tree models consume raw values.
#pragma once

#include "data/matrix.hpp"

#include <vector>

namespace mfpa::data {

/// Per-column standardization to zero mean / unit variance. Constant columns
/// are left centered but unscaled (sigma treated as 1).
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation.
  void fit(const Matrix& X);

  /// Applies the learned transform; throws std::logic_error if not fitted
  /// or the column count differs from the fit-time matrix.
  Matrix transform(const Matrix& X) const;

  /// fit() followed by transform().
  Matrix fit_transform(const Matrix& X);

  bool fitted() const noexcept { return !means_.empty(); }
  const std::vector<double>& means() const noexcept { return means_; }
  const std::vector<double>& stddevs() const noexcept { return stds_; }

  /// Restores a fitted state (deserialization); sizes must match.
  void set_state(std::vector<double> means, std::vector<double> stds);

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

/// Per-column min-max scaling to [0, 1]; constant columns map to 0.
class MinMaxScaler {
 public:
  void fit(const Matrix& X);
  Matrix transform(const Matrix& X) const;
  Matrix fit_transform(const Matrix& X);
  bool fitted() const noexcept { return !mins_.empty(); }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace mfpa::data
