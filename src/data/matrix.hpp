// Dense row-major matrix of doubles — the numeric substrate for the ML
// library. Deliberately small: just the operations the models need, with
// bounds checking in debug builds and contiguous row access via std::span.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace mfpa::data {

/// Row-major dense matrix. Value type; cheap to move.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists (rows must have equal arity).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return values_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return values_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {values_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {values_.data() + r * cols_, cols_};
  }

  /// Copies out column c.
  std::vector<double> column(std::size_t c) const;

  /// Copies column c into `out` (resized to rows()), reusing its capacity —
  /// the allocation-free form of column() for per-feature loops (binning).
  void column_into(std::size_t c, std::vector<double>& out) const;

  /// Appends a row (arity must match cols(), or the matrix must be empty in
  /// which case the arity defines cols()).
  void add_row(std::span<const double> values);

  /// New matrix with only the given rows, in the given order.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  /// New matrix with only the given columns, in the given order.
  Matrix select_columns(std::span<const std::size_t> indices) const;

  /// Vertically concatenates `other` below this matrix (cols must match,
  /// or this matrix must be empty).
  void append(const Matrix& other);

  /// Raw storage (row-major).
  std::span<const double> data() const noexcept { return values_; }
  std::span<double> data() noexcept { return values_; }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace mfpa::data
