#include "data/matrix.hpp"

#include <stdexcept>

namespace mfpa::data {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), values_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  for (const auto& row : init) {
    add_row(std::vector<double>(row.begin(), row.end()));
  }
}

std::vector<double> Matrix::column(std::size_t c) const {
  std::vector<double> out;
  column_into(c, out);
  return out;
}

void Matrix::column_into(std::size_t c, std::vector<double>& out) const {
  if (c >= cols_) throw std::out_of_range("Matrix::column: index out of range");
  out.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = values_[r * cols_ + c];
}

void Matrix::add_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  } else if (values.size() != cols_) {
    throw std::invalid_argument("Matrix::add_row: arity mismatch");
  }
  values_.insert(values_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) {
      throw std::out_of_range("Matrix::select_rows: index out of range");
    }
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Matrix Matrix::select_columns(std::span<const std::size_t> indices) const {
  Matrix out(rows_, indices.size());
  for (std::size_t c = 0; c < indices.size(); ++c) {
    if (indices[c] >= cols_) {
      throw std::out_of_range("Matrix::select_columns: index out of range");
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto src = row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < indices.size(); ++c) dst[c] = src[indices[c]];
  }
  return out;
}

void Matrix::append(const Matrix& other) {
  if (other.empty()) return;
  if (rows_ == 0 && cols_ == 0) {
    *this = other;
    return;
  }
  if (other.cols_ != cols_) {
    throw std::invalid_argument("Matrix::append: column mismatch");
  }
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  rows_ += other.rows_;
}

}  // namespace mfpa::data
