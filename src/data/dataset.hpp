// Labeled feature dataset with per-row provenance (drive id, observation
// day, vendor), the unit of exchange between the preprocessing pipeline and
// the ML library.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/date.hpp"
#include "data/matrix.hpp"

namespace mfpa::data {

/// Provenance of one sample row.
struct RowMeta {
  std::uint64_t drive_id = 0;  ///< fleet-unique drive identifier (S/N)
  DayIndex day = 0;            ///< observation day of the sample
  int vendor = 0;              ///< vendor index (0-based)

  friend bool operator==(const RowMeta&, const RowMeta&) = default;
};

/// Features + binary labels + provenance + feature names.
///
/// Invariant: X.rows() == y.size() == meta.size(), and
/// X.cols() == feature_names.size() whenever feature names are set.
class Dataset {
 public:
  Matrix X;
  std::vector<int> y;                       ///< 1 = will fail (positive), 0 = healthy
  std::vector<RowMeta> meta;
  std::vector<std::string> feature_names;   ///< one per column

  std::size_t size() const noexcept { return y.size(); }
  bool empty() const noexcept { return y.empty(); }
  std::size_t num_features() const noexcept { return X.cols(); }

  /// Appends one sample. Feature arity must match existing columns.
  void add(std::span<const double> features, int label, RowMeta row_meta);

  /// Validates the size invariants; throws std::logic_error on violation.
  void check_invariants() const;

  /// Number of positive-labeled rows.
  std::size_t positives() const noexcept;
  /// Number of negative-labeled rows.
  std::size_t negatives() const noexcept { return size() - positives(); }

  /// New dataset with the selected rows (in the given order).
  Dataset select_rows(std::span<const std::size_t> indices) const;

  /// New dataset keeping only the named features (by exact name, in the
  /// given order); throws std::out_of_range for an unknown name.
  Dataset select_features(const std::vector<std::string>& names) const;

  /// Index of a named feature; throws std::out_of_range if absent.
  std::size_t feature_index(const std::string& name) const;

  /// Splits by observation day: rows with day <= cutoff go to `first`.
  std::pair<Dataset, Dataset> split_by_day(DayIndex cutoff) const;

  /// Rows matching a predicate on metadata.
  Dataset filter(const std::function<bool(const RowMeta&, int label)>& pred) const;

  /// Sorted copy ordered by (day, drive_id): the canonical chronological
  /// order expected by time-series cross-validation.
  Dataset sorted_by_time() const;

  /// Concatenates another dataset below this one (feature names must match).
  void append(const Dataset& other);
};

}  // namespace mfpa::data
