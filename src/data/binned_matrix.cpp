#include "data/binned_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace mfpa::data {
namespace {

// Midpoint in the exact split path's formulation (decision_tree.cpp computes
// thresholds as 0.5 * (lo + hi)); matching it bit-for-bit keeps hist-trained
// thresholds identical to exact-trained ones on low-cardinality features.
double midpoint(double lo, double hi) noexcept { return 0.5 * (lo + hi); }

}  // namespace

BinnedMatrix::BinnedMatrix(const Matrix& X, std::size_t max_bins) {
  if (X.empty()) {
    throw std::invalid_argument("BinnedMatrix: empty matrix");
  }
  if (max_bins < 2 || max_bins > kMaxBins) {
    throw std::invalid_argument("BinnedMatrix: max_bins must be in [2, 255]");
  }
  rows_ = X.rows();
  cols_ = X.cols();
  codes_.resize(rows_ * cols_);
  edges_.resize(cols_);

  std::vector<double> col;
  std::vector<double> sorted;
  for (std::size_t f = 0; f < cols_; ++f) {
    X.column_into(f, col);
    sorted = col;
    std::sort(sorted.begin(), sorted.end());

    std::size_t distinct = 1;
    for (std::size_t i = 1; i < rows_; ++i) {
      distinct += sorted[i] != sorted[i - 1];
    }

    auto& cuts = edges_[f];
    cuts.clear();
    if (distinct <= max_bins) {
      // Every boundary between adjacent distinct values becomes a cut — the
      // same candidate set the exact sorted path enumerates.
      cuts.reserve(distinct - 1);
      for (std::size_t i = 1; i < rows_; ++i) {
        if (sorted[i] != sorted[i - 1]) {
          cuts.push_back(midpoint(sorted[i - 1], sorted[i]));
        }
      }
    } else {
      // Greedy equal-frequency sketch over runs of equal values. Naive
      // quantile positions k*n/max_bins waste most of the cut budget inside
      // the giant tied runs SMART-style counters produce (e.g. 90% zeros);
      // walking distinct runs instead gives a heavy run its own bin and
      // spends the remaining cuts where the values actually vary.
      cuts.reserve(max_bins - 1);
      std::size_t bins_left = max_bins;
      std::size_t remaining = rows_;
      std::size_t acc = 0;  // population of the bin currently being filled
      for (std::size_t i = 0; i < rows_;) {
        std::size_t j = i + 1;
        while (j < rows_ && sorted[j] == sorted[i]) ++j;
        const std::size_t run = j - i;
        // Close the open bin when this run would overfill it, or when the
        // run is big enough to deserve a bin of its own.
        if (acc > 0 && bins_left > 1 &&
            (acc + run > remaining / bins_left ||
             run * bins_left > remaining)) {
          cuts.push_back(midpoint(sorted[i - 1], sorted[i]));
          remaining -= acc;
          --bins_left;
          acc = 0;
        }
        acc += run;
        i = j;
      }
    }

    std::uint8_t* code_col = codes_.data() + f * rows_;
    for (std::size_t r = 0; r < rows_; ++r) {
      code_col[r] = static_cast<std::uint8_t>(
          std::lower_bound(cuts.begin(), cuts.end(), col[r]) - cuts.begin());
    }
  }
}

void BinnedMatrix::row_codes_into(std::size_t row_lo, std::size_t row_hi,
                                  std::uint8_t* out) const noexcept {
  assert(row_lo <= row_hi && row_hi <= rows_ &&
         "BinnedMatrix::row_codes_into: row range out of bounds");
  assert((out != nullptr || row_lo == row_hi) &&
         "BinnedMatrix::row_codes_into: null output");
  for (std::size_t f = 0; f < cols_; ++f) {
    const std::uint8_t* col = codes_.data() + f * rows_;
    for (std::size_t r = row_lo; r < row_hi; ++r) {
      out[(r - row_lo) * cols_ + f] = col[r];
    }
  }
}

BinnedMatrix BinnedMatrix::select_rows(std::span<const std::size_t> indices) const {
  BinnedMatrix out;
  out.rows_ = indices.size();
  out.cols_ = cols_;
  out.edges_ = edges_;
  out.codes_.resize(out.rows_ * cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) {
      throw std::out_of_range("BinnedMatrix::select_rows: index out of range");
    }
  }
  for (std::size_t f = 0; f < cols_; ++f) {
    const std::uint8_t* src = codes_.data() + f * rows_;
    std::uint8_t* dst = out.codes_.data() + f * out.rows_;
    for (std::size_t i = 0; i < indices.size(); ++i) dst[i] = src[indices[i]];
  }
  return out;
}

}  // namespace mfpa::data
