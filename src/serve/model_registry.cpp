#include "serve/model_registry.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ml/checksum.hpp"
#include "ml/flat_forest.hpp"
#include "ml/serialize.hpp"

namespace mfpa::serve {
namespace fs = std::filesystem;

namespace {

std::string version_name(int version) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "v%06d", version);
  return buf;
}

/// Parses "v000123" -> 123; returns 0 for anything else.
int parse_version_name(const std::string& name) {
  if (name.size() != 7 || name[0] != 'v') return 0;
  int v = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    v = v * 10 + (name[i] - '0');
  }
  return v;
}

void atomic_write(const fs::path& final_path, const std::string& contents) {
  const fs::path tmp = final_path.parent_path() /
                       ("." + final_path.filename().string() + ".tmp");
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) {
      throw std::runtime_error("ModelRegistry: cannot write " + tmp.string());
    }
    f << contents;
    if (!f.flush()) {
      throw std::runtime_error("ModelRegistry: write failed for " +
                               tmp.string());
    }
  }
  fs::rename(tmp, final_path);  // atomic within a filesystem
}

void expect_line_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected) {
    throw std::runtime_error("ModelRegistry: artifact missing '" + expected +
                             "' (got '" + token + "')");
  }
}

}  // namespace

core::SampleBuilder ServedModel::make_builder() const {
  core::SampleConfig sc;
  sc.group = manifest.group;
  return core::SampleBuilder(sc, &encoder);
}

ModelRegistry::ModelRegistry(std::string directory, std::size_t score_threads,
                             bool compile_models, bool quantize_models)
    : dir_(std::move(directory)),
      score_threads_(score_threads),
      compile_models_(compile_models),
      quantize_models_(quantize_models) {
  auto& reg = obs::registry();
  metrics_.publishes = &reg.counter("mfpa_registry_publishes_total");
  metrics_.activations = &reg.counter("mfpa_registry_activations_total");
  metrics_.swap_seconds =
      &reg.histogram("mfpa_registry_swap_seconds", 0.0, 10.0, 256);
  metrics_.current_version = &reg.gauge("mfpa_registry_current_version");
  fs::create_directories(dir_);
  // A crash between atomic_write's temp write and its rename leaves a
  // ".<name>.tmp" orphan; it was never referenced by CURRENT, so sweeping
  // it here is always safe and keeps the directory listing clean.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.size() > 5 && name.front() == '.' &&
        name.ends_with(".tmp")) {
      fs::remove(entry.path());
    }
  }
  const fs::path marker = fs::path(dir_) / "CURRENT";
  if (fs::exists(marker)) {
    std::ifstream f(marker);
    std::string name;
    f >> name;
    const int version = parse_version_name(name);
    if (version <= 0) {
      throw std::runtime_error("ModelRegistry: malformed CURRENT marker '" +
                               name + "' in " + dir_);
    }
    set_current(load_version(version));
    metrics_.current_version->set(version);
  }
}

std::string ModelRegistry::artifact_path(int version) const {
  return (fs::path(dir_) / (version_name(version) + ".model")).string();
}

int ModelRegistry::current_version() const {
  const auto snapshot = current();
  return snapshot ? snapshot->manifest.version : 0;
}

std::vector<int> ModelRegistry::versions() const {
  std::vector<int> out;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == 13 && name.ends_with(".model")) {
      const int v = parse_version_name(name.substr(0, 7));
      if (v > 0) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int ModelRegistry::publish(const ml::Classifier& model,
                           const data::LabelEncoder& encoder,
                           core::FeatureGroup group, double threshold,
                           DayIndex train_lo, DayIndex train_hi) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  const auto existing = versions();
  const int version = existing.empty() ? 1 : existing.back() + 1;

  // Render the model payload once; its digest goes into the manifest so the
  // manifest itself cross-checks the framing.
  std::ostringstream payload;
  const std::uint64_t digest = ml::save_classifier(payload, model);

  std::ostringstream artifact;
  artifact << "mfpa_artifact 1\n"
           << "version " << version << '\n'
           << "algorithm " << model.name() << '\n'
           << "group " << core::feature_group_name(group) << '\n'
           << "threshold ";
  ml::io::write_double(artifact, threshold);
  artifact << '\n'
           << "train_window " << train_lo << ' ' << train_hi << '\n'
           << "firmware " << encoder.classes().size();
  for (const auto& cls : encoder.classes()) artifact << ' ' << cls;
  artifact << '\n'
           << "checksum " << ml::checksum_hex(digest) << '\n'
           << payload.str();

  atomic_write(artifact_path(version), artifact.str());
  write_current_marker(version);
  {
    obs::ScopedTimer timer(*metrics_.swap_seconds);
    set_current(load_version(version));
  }
  metrics_.publishes->inc();
  metrics_.current_version->set(version);
  return version;
}

int ModelRegistry::publish_pipeline(const core::MfpaPipeline& pipeline,
                                    DayIndex train_lo, DayIndex train_hi) {
  return publish(pipeline.model(), pipeline.firmware_encoder(),
                 pipeline.config().group, pipeline.threshold(), train_lo,
                 train_hi);
}

std::shared_ptr<const ServedModel> ModelRegistry::load_version(
    int version) const {
  const std::string path = artifact_path(version);
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("ModelRegistry: missing artifact " + path);
  }
  expect_line_token(f, "mfpa_artifact");
  int format = 0;
  if (!(f >> format) || format != 1) {
    throw std::runtime_error("ModelRegistry: unsupported artifact format in " +
                             path);
  }
  auto served = std::make_shared<ServedModel>();
  ModelManifest& m = served->manifest;
  expect_line_token(f, "version");
  if (!(f >> m.version) || m.version != version) {
    throw std::runtime_error("ModelRegistry: version mismatch inside " + path);
  }
  expect_line_token(f, "algorithm");
  if (!(f >> m.algorithm)) {
    throw std::runtime_error("ModelRegistry: missing algorithm in " + path);
  }
  expect_line_token(f, "group");
  std::string group_name;
  if (!(f >> group_name)) {
    throw std::runtime_error("ModelRegistry: missing group in " + path);
  }
  m.group = core::feature_group_from_name(group_name);
  expect_line_token(f, "threshold");
  m.threshold = ml::io::read_double(f);
  expect_line_token(f, "train_window");
  if (!(f >> m.train_lo >> m.train_hi)) {
    throw std::runtime_error("ModelRegistry: malformed train_window in " +
                             path);
  }
  expect_line_token(f, "firmware");
  std::size_t vocab = 0;
  if (!(f >> vocab) || vocab > (1u << 20)) {
    throw std::runtime_error("ModelRegistry: malformed firmware vocabulary in " +
                             path);
  }
  std::vector<std::string> versions_list(vocab);
  for (auto& v : versions_list) {
    if (!(f >> v)) {
      throw std::runtime_error("ModelRegistry: truncated firmware vocabulary in " +
                               path);
    }
  }
  served->encoder.fit(versions_list);
  expect_line_token(f, "checksum");
  std::string hex;
  if (!(f >> hex)) {
    throw std::runtime_error("ModelRegistry: missing checksum in " + path);
  }
  m.checksum = ml::parse_checksum_hex(hex);

  // The framing header that follows carries the digest the payload must
  // hash to; requiring it to equal the manifest's digest ties the two halves
  // of the artifact together, and load_classifier then verifies the payload
  // bytes actually hash to it.
  if (f.get() != '\n') {
    throw std::runtime_error("ModelRegistry: malformed checksum line in " +
                             path);
  }
  const std::streampos payload_start = f.tellg();
  std::string magic;
  int model_format = 0;
  std::size_t body_size = 0;
  std::string framing_hex;
  if (!(f >> magic >> model_format >> body_size >> framing_hex) ||
      magic != "mfpa_model" || model_format != 2) {
    throw std::runtime_error("ModelRegistry: malformed model framing in " +
                             path);
  }
  if (ml::parse_checksum_hex(framing_hex) != m.checksum) {
    throw std::runtime_error(
        "ModelRegistry: manifest checksum does not match payload in " + path);
  }
  f.seekg(payload_start);
  ml::Hyperparams overrides;
  overrides["threads"] = static_cast<double>(score_threads_);
  served->classifier = ml::load_classifier(f, overrides);
  // Compile tree ensembles into the flat inference format here, at
  // activation time, so every model the engine hot-swaps to serves from
  // the compiled representation (probabilities stay bit-identical). The
  // quantized form layers on top: when requested and the model quantizes,
  // predict_proba prefers it; otherwise the flat form still serves.
  if (compile_models_ || quantize_models_) {
    if (auto* compiled =
            dynamic_cast<ml::CompiledInference*>(served->classifier.get())) {
      if (compile_models_) compiled->compile();
      if (quantize_models_) compiled->compile_quantized();
    }
  }
  return served;
}

void ModelRegistry::activate(int version) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  obs::ScopedTimer timer(*metrics_.swap_seconds);
  auto served = load_version(version);
  write_current_marker(version);
  set_current(std::move(served));
  metrics_.activations->inc();
  metrics_.current_version->set(version);
}

void ModelRegistry::write_current_marker(int version) {
  atomic_write(fs::path(dir_) / "CURRENT", version_name(version) + "\n");
}

}  // namespace mfpa::serve
