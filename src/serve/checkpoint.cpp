#include "serve/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ml/checksum.hpp"

namespace mfpa::serve {
namespace fs = std::filesystem;

namespace {

fs::path ckpt_dir(const std::string& dir) { return fs::path(dir) / "ckpt"; }

std::string ckpt_name(std::uint64_t lsn) {
  return "ckpt-" + std::to_string(lsn) + ".mfc";
}

/// Parses "ckpt-42.mfc" -> 42; nullopt for other names.
std::optional<std::uint64_t> parse_ckpt_name(const std::string& name) {
  if (!name.starts_with("ckpt-") || !name.ends_with(".mfc")) {
    return std::nullopt;
  }
  try {
    std::size_t used = 0;
    const std::string digits = name.substr(5, name.size() - 9);
    const std::uint64_t lsn = std::stoull(digits, &used);
    if (used != digits.size()) return std::nullopt;
    return lsn;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_checkpoint_file(const std::string& path,
                           const DriveStateStore& store, std::uint64_t lsn,
                           std::uint64_t alert_count, int model_version,
                           bool fsync) {
  std::ostringstream payload;
  payload << "checkpoint 1 " << lsn << ' ' << alert_count << ' '
          << model_version << '\n';
  store.save_state(payload);
  const std::string body = payload.str();

  const fs::path final_path(path);
  const fs::path tmp = final_path.parent_path() /
                       ("." + final_path.filename().string() + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("checkpoint: cannot create " + tmp.string());
    }
    out << "mfpa_ckpt 1 " << body.size() << ' '
        << ml::checksum_hex(ml::fnv1a(body)) << '\n';
    out << body;
    out.flush();
    if (!out) {
      throw std::runtime_error("checkpoint: write failed for " + tmp.string());
    }
  }
  if (fsync) fsync_path(tmp.string());
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    throw std::runtime_error("checkpoint: cannot publish " + path + ": " +
                             ec.message());
  }
  if (fsync) fsync_path(final_path.parent_path().string());
}

CheckpointImage load_checkpoint_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  const std::size_t nl = bytes.find('\n');
  if (nl == std::string::npos) {
    throw std::runtime_error("checkpoint: missing header in " + path);
  }
  std::istringstream header(bytes.substr(0, nl));
  std::string tag, hex;
  int version = 0;
  std::size_t payload_bytes = 0;
  if (!(header >> tag >> version >> payload_bytes >> hex) ||
      tag != "mfpa_ckpt" || version != 1) {
    throw std::runtime_error("checkpoint: malformed header in " + path);
  }
  const std::string payload = bytes.substr(nl + 1);
  if (payload.size() != payload_bytes) {
    throw std::runtime_error(
        "checkpoint: " + path + " holds " + std::to_string(payload.size()) +
        " payload bytes, header declares " + std::to_string(payload_bytes) +
        " (truncated or trailing garbage)");
  }
  if (ml::fnv1a(payload) != ml::parse_checksum_hex(hex)) {
    throw std::runtime_error("checkpoint: payload checksum mismatch in " +
                             path);
  }
  const std::size_t body_nl = payload.find('\n');
  if (body_nl == std::string::npos) {
    throw std::runtime_error("checkpoint: missing payload header in " + path);
  }
  std::istringstream body_header(payload.substr(0, body_nl));
  CheckpointImage image;
  if (!(body_header >> tag >> version >> image.lsn >> image.alert_count >>
        image.model_version) ||
      tag != "checkpoint" || version != 1) {
    throw std::runtime_error("checkpoint: malformed payload header in " + path);
  }
  image.store_state = payload.substr(body_nl + 1);
  return image;
}

std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  const fs::path d = ckpt_dir(dir);
  if (!fs::exists(d)) return out;
  for (const auto& entry : fs::directory_iterator(d)) {
    const auto lsn = parse_ckpt_name(entry.path().filename().string());
    if (lsn.has_value()) out.emplace_back(*lsn, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// --- DurabilityManager -----------------------------------------------------

namespace {

/// Rejecting the empty dir here, before the member initializers run, keeps
/// WalWriter/AlertLog from creating stray `wal/` dirs relative to the cwd.
DurabilityConfig validated(DurabilityConfig config) {
  if (!config.enabled()) {
    throw std::invalid_argument("DurabilityManager: empty durable dir");
  }
  return config;
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityConfig config)
    : config_(validated(std::move(config))),
      wal_(WalWriterConfig{config_.dir, config_.wal_shards,
                           config_.group_commit_records, config_.fsync}),
      alerts_(config_.dir, config_.fsync) {
  fs::create_directories(ckpt_dir(config_.dir));
  auto& reg = obs::registry();
  metrics_.writes = &reg.counter("mfpa_ckpt_writes_total");
  metrics_.bytes = &reg.counter("mfpa_ckpt_bytes_total");
  metrics_.loads = &reg.counter("mfpa_ckpt_loads_total");
  metrics_.fallbacks = &reg.counter("mfpa_ckpt_fallbacks_total");
  metrics_.pruned = &reg.counter("mfpa_ckpt_pruned_total");
  metrics_.last_lsn = &reg.gauge("mfpa_ckpt_last_lsn");
}

RecoveryResult DurabilityManager::recover(DriveStateStore& store,
                                          int current_model_version) {
  RecoveryResult result;

  // A crash mid-publish leaves a dot-temp behind; it was never the durable
  // truth, so clear it before selecting a checkpoint.
  for (const auto& entry : fs::directory_iterator(ckpt_dir(config_.dir))) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(".") && name.ends_with(".tmp")) {
      fs::remove(entry.path());
    }
  }

  auto candidates = list_checkpoints(config_.dir);
  std::optional<CheckpointImage> image;
  std::string failure;
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    try {
      image = load_checkpoint_file(it->second);
      break;
    } catch (const std::exception& e) {
      // A corrupt newest checkpoint falls back one generation (the WAL keeps
      // segments that far); anything beyond that is unrecoverable below.
      ++result.checkpoints_skipped;
      metrics_.fallbacks->inc();
      if (failure.empty()) failure = e.what();
    }
  }
  if (!image.has_value() && !candidates.empty()) {
    throw std::runtime_error(
        "checkpoint: no valid checkpoint among " +
        std::to_string(candidates.size()) +
        " candidates; refusing to rebuild state over a hole (first error: " +
        failure + ")");
  }

  std::uint64_t after_lsn = 0;
  std::uint64_t durable_alerts = 0;
  if (image.has_value()) {
    if (image->model_version != current_model_version) {
      throw std::runtime_error(
          "checkpoint: pinned to model version " +
          std::to_string(image->model_version) +
          " but the registry's current version is " +
          std::to_string(current_model_version) +
          "; replaying under a different model would fabricate alerts");
    }
    std::istringstream state(image->store_state);
    store.load_state(state);
    result.checkpoint_loaded = true;
    result.checkpoint_lsn = image->lsn;
    result.model_version = image->model_version;
    after_lsn = image->lsn;
    durable_alerts = image->alert_count;
    metrics_.loads->inc();
  }

  result.alerts = recover_alert_log(config_.dir, durable_alerts);
  alerts_.open(durable_alerts);
  result.tail = recover_wal(config_.dir, after_lsn, &result.wal);
  result.durable_records = after_lsn + result.tail.size();
  wal_.set_next_lsn(result.durable_records + 1);
  last_checkpoint_lsn_ = after_lsn;
  prev_checkpoint_lsn_ = after_lsn;
  return result;
}

void DurabilityManager::finish_recovery(const DriveStateStore& store,
                                        int model_version) {
  // Seal the replayed state: checkpoint it, then restart the WAL from a
  // clean generation (the old segments are fully covered by the snapshot).
  alerts_.flush();
  const std::uint64_t lsn = wal_.last_lsn();
  write_checkpoint_file(
      (ckpt_dir(config_.dir) / ckpt_name(lsn)).string(), store, lsn,
      alerts_.count(), model_version, config_.fsync);
  metrics_.writes->inc();
  metrics_.last_lsn->set(static_cast<double>(lsn));
  prev_checkpoint_lsn_ = last_checkpoint_lsn_;
  last_checkpoint_lsn_ = lsn;
  wal_.reset(lsn);
  prune_checkpoints();
  records_since_checkpoint_ = 0;
  recovered_ = true;
}

std::uint64_t DurabilityManager::append(std::uint64_t drive_id, int vendor,
                                        const sim::DailyRecord& record) {
  if (!recovered_) {
    throw std::logic_error("DurabilityManager: append before finish_recovery");
  }
  ++records_since_checkpoint_;
  return wal_.append(drive_id, vendor, record);
}

void DurabilityManager::append_alert(const core::Alert& alert) {
  alerts_.append(alert);
}

void DurabilityManager::on_batch_end(const DriveStateStore& store,
                                     int model_version) {
  if (config_.checkpoint_interval_records > 0 &&
      records_since_checkpoint_ >= config_.checkpoint_interval_records) {
    checkpoint_now(store, model_version);
  }
}

void DurabilityManager::checkpoint_now(const DriveStateStore& store,
                                       int model_version) {
  // Everything appended so far must be durable before the snapshot claims
  // to cover it (WAL-then-checkpoint ordering).
  wal_.flush();
  alerts_.flush();
  const std::uint64_t lsn = wal_.last_lsn();
  const std::string path = (ckpt_dir(config_.dir) / ckpt_name(lsn)).string();
  write_checkpoint_file(path, store, lsn, alerts_.count(), model_version,
                        config_.fsync);
  metrics_.writes->inc();
  metrics_.bytes->inc(fs::file_size(path));
  metrics_.last_lsn->set(static_cast<double>(lsn));
  if (lsn != last_checkpoint_lsn_) {
    prev_checkpoint_lsn_ = last_checkpoint_lsn_;
    last_checkpoint_lsn_ = lsn;
  }
  // Keep WAL generations back to the fallback checkpoint, no further.
  wal_.rotate(lsn, prev_checkpoint_lsn_);
  prune_checkpoints();
  records_since_checkpoint_ = 0;
}

void DurabilityManager::flush() {
  wal_.flush();
  alerts_.flush();
}

void DurabilityManager::prune_checkpoints() {
  auto checkpoints = list_checkpoints(config_.dir);
  if (checkpoints.size() <= 2) return;
  for (std::size_t i = 0; i + 2 < checkpoints.size(); ++i) {
    fs::remove(checkpoints[i].second);
    metrics_.pruned->inc();
  }
}

}  // namespace mfpa::serve
