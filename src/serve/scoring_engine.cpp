#include "serve/scoring_engine.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <string>

#include "data/matrix.hpp"
#include "obs/trace.hpp"

namespace mfpa::serve {
namespace {

/// Distinguishes concurrently (or sequentially) live engines in one
/// process: each instance gets its own mfpa_serve_* family members, so
/// EngineStats snapshots never mix traffic across engines (tests construct
/// many engines per process; production runs one).
std::atomic<std::uint64_t> g_engine_seq{0};

}  // namespace

ScoringEngine::ScoringEngine(const ModelRegistry& registry, EngineConfig config)
    : registry_(&registry), config_(config), store_(config.store) {
  if (config_.queue_capacity == 0 || config_.max_batch == 0) {
    throw std::invalid_argument(
        "ScoringEngine: queue_capacity and max_batch must be positive");
  }
  auto& reg = obs::registry();
  const obs::Labels labels = {
      {"engine",
       config_.instance_label.empty()
           ? std::to_string(
                 g_engine_seq.fetch_add(1, std::memory_order_relaxed))
           : config_.instance_label}};
  metrics_.submitted = &reg.counter("mfpa_serve_submitted_total", labels);
  metrics_.accepted = &reg.counter("mfpa_serve_accepted_total", labels);
  metrics_.shed = &reg.counter("mfpa_serve_shed_total", labels);
  metrics_.rejected = &reg.counter("mfpa_serve_rejected_total", labels);
  metrics_.unscored_no_model =
      &reg.counter("mfpa_serve_unscored_no_model_total", labels);
  metrics_.records_processed =
      &reg.counter("mfpa_serve_records_processed_total", labels);
  metrics_.rows_scored = &reg.counter("mfpa_serve_rows_scored_total", labels);
  metrics_.synthetic_rows =
      &reg.counter("mfpa_serve_synthetic_rows_total", labels);
  metrics_.batches = &reg.counter("mfpa_serve_batches_total", labels);
  metrics_.alerts = &reg.counter("mfpa_serve_alerts_total", labels);
  metrics_.model_swaps = &reg.counter("mfpa_serve_model_swaps_total", labels);
  metrics_.batch_size = &reg.histogram(
      "mfpa_serve_batch_size", 0.0, static_cast<double>(config_.max_batch) + 1.0,
      std::min<std::size_t>(config_.max_batch + 1, 512), labels);
  metrics_.queue_depth = &reg.histogram(
      "mfpa_serve_queue_depth", 0.0,
      static_cast<double>(config_.queue_capacity) + 1.0,
      std::min<std::size_t>(config_.queue_capacity + 1, 128), labels);
  metrics_.latency_us = &reg.histogram("mfpa_serve_latency_us", 0.0,
                                       config_.latency_hi_us, 512, labels);
  metrics_.max_queue_depth = &reg.gauge("mfpa_serve_max_queue_depth", labels);
  if (config_.durability.enabled()) {
    recover_durable_state();
  }
  if (!config_.manual_drain) {
    drain_thread_ = std::thread([this] { drain_loop(); });
  }
}

void ScoringEngine::recover_durable_state() {
  durability_ = std::make_unique<DurabilityManager>(config_.durability);
  const auto model = registry_->current();
  const int version = model ? model->manifest.version : -1;
  RecoveryResult recovered = durability_->recover(store_, version);

  // The durable alert prefix is restored verbatim; the WAL tail regenerates
  // the rest through the normal scoring path (no WAL re-append, no
  // checkpoint cadence — `recovering_` gates both in process_batch).
  alerts_ = recovered.alerts;
  recovering_ = true;
  std::vector<QueuedUpdate> batch;
  batch.reserve(config_.max_batch);
  const auto now = Clock::now();
  for (const WalEntry& entry : recovered.tail) {
    batch.push_back({{entry.drive_id, entry.vendor, entry.record}, now});
    if (batch.size() == config_.max_batch) {
      process_batch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) process_batch(batch);
  recovering_ = false;
  durability_->finish_recovery(store_, version);

  durable_resume_records_ = recovered.durable_records;
  recovered.tail.clear();  // keep the summary, not the replayed records
  recovery_ = std::move(recovered);
}

ScoringEngine::~ScoringEngine() {
  try {
    stop();
  } catch (...) {
    // Destructor: a failed final checkpoint leaves the WAL authoritative;
    // recovery replays it.
  }
}

bool ScoringEngine::submit(const TelemetryUpdate& update) {
  metrics_.submitted->inc();
  std::unique_lock<std::mutex> lock(queue_mu_);
  if (config_.shed_on_full && queue_.size() >= config_.queue_capacity) {
    lock.unlock();
    metrics_.shed->inc();
    return false;
  }
  queue_not_full_.wait(lock, [this] {
    return queue_.size() < config_.queue_capacity || stopping_;
  });
  if (stopping_) {
    lock.unlock();
    metrics_.shed->inc();
    return false;
  }
  queue_.push_back({update, Clock::now()});
  const std::size_t depth = queue_.size();
  lock.unlock();
  metrics_.accepted->inc();
  metrics_.max_queue_depth->max_of(static_cast<double>(depth));
  queue_not_empty_.notify_one();
  return true;
}

void ScoringEngine::drain_loop() {
  for (;;) {
    std::vector<QueuedUpdate> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_not_empty_.wait(lock,
                            [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) break;  // stopping_ and fully drained
      const std::size_t depth = queue_.size();
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      processing_ = true;
      metrics_.queue_depth->observe(static_cast<double>(depth));
    }
    queue_not_full_.notify_all();
    process_batch(batch);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      processing_ = false;
      if (queue_.empty()) drained_.notify_all();
    }
  }
  std::lock_guard<std::mutex> lock(queue_mu_);
  processing_ = false;
  drained_.notify_all();
}

std::size_t ScoringEngine::drain_once() {
  std::vector<QueuedUpdate> batch;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (queue_.empty()) return 0;
    const std::size_t depth = queue_.size();
    const std::size_t take = std::min(config_.max_batch, queue_.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    metrics_.queue_depth->observe(static_cast<double>(depth));
  }
  queue_not_full_.notify_all();
  return process_batch(batch);
}

std::size_t ScoringEngine::process_batch(std::vector<QueuedUpdate>& batch) {
  obs::ScopedSpan span("serve.batch");
  // RCU-style read: one snapshot pins the model (and its encoder/builder
  // inputs) for the whole batch; a concurrent publish affects the next batch.
  auto model = registry_->current();
  if (model && (!cached_model_ ||
                cached_model_->manifest.version != model->manifest.version)) {
    const bool swap = cached_model_ != nullptr;
    cached_model_ = model;
    cached_builder_.emplace(model->make_builder());
    if (swap) metrics_.model_swaps->inc();
  }

  if (durability_ && !recovering_) {
    // WAL-before-apply: every record is durable (modulo group commit)
    // before any state it produced can be checkpointed. Rejected records
    // are logged too — rejection is deterministic, so replay re-rejects.
    obs::ScopedSpan wal_span("serve.wal_append");
    for (const auto& queued : batch) {
      durability_->append(queued.update.drive_id, queued.update.vendor,
                          queued.update.record);
    }
  }

  std::vector<PendingRow> rows;
  rows.reserve(batch.size());
  std::uint64_t processed = 0;
  std::uint64_t rejected = 0;
  {
    obs::ScopedSpan ingest_span("serve.store_ingest");
    for (const auto& queued : batch) {
      try {
        store_.ingest(queued.update.drive_id, queued.update.vendor,
                      queued.update.record, rows);
        ++processed;
      } catch (const std::invalid_argument&) {
        // Strict-mode day-order violation: the record is unusable but must
        // never stall the queue; account and move on.
        ++rejected;
      }
    }
  }

  std::vector<double> scores;
  if (!rows.empty() && model) {
    obs::ScopedSpan predict_span("serve.predict");
    data::Matrix X(0, 0);
    for (const auto& row : rows) {
      X.add_row(cached_builder_->features_of(row.record));
    }
    scores = model->classifier->predict_proba(X);
  }

  const auto now = Clock::now();
  metrics_.batches->inc();
  metrics_.batch_size->observe(static_cast<double>(batch.size()));
  metrics_.records_processed->inc(processed);
  metrics_.rejected->inc(rejected);
  for (const auto& queued : batch) {
    metrics_.latency_us->observe(
        std::chrono::duration<double, std::micro>(now - queued.enqueued)
            .count());
  }
  if (!model) {
    metrics_.unscored_no_model->inc(rows.size());
    if (durability_ && !recovering_) {
      durability_->on_batch_end(store_, -1);
    }
    return batch.size();
  }
  {
    obs::ScopedSpan alert_span("serve.alerts");
    std::lock_guard<std::mutex> rlock(results_mu_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PendingRow& row = rows[i];
      metrics_.rows_scored->inc();
      if (row.record.synthetic) metrics_.synthetic_rows->inc();
      const bool crossed = scores[i] >= model->manifest.threshold;
      if (config_.record_scores) {
        scored_rows_.push_back({row.drive_id, row.record.day, scores[i],
                                model->manifest.version, row.record.synthetic});
      }
      if (store_.should_alert(row.drive_id, row.record.day, row.segment,
                              crossed,
                              config_.alert_policy)) {
        const core::Alert alert{row.drive_id, row.record.day, scores[i]};
        alerts_.push_back(alert);
        metrics_.alerts->inc();
        // During recovery this regenerates the truncated post-checkpoint
        // alert tail; during normal operation it extends the durable log.
        if (durability_) durability_->append_alert(alert);
      }
    }
  }
  if (durability_ && !recovering_) {
    durability_->on_batch_end(store_, model->manifest.version);
  }
  return batch.size();
}

void ScoringEngine::flush() {
  if (config_.manual_drain) {
    while (drain_once() > 0) {
    }
    return;
  }
  std::unique_lock<std::mutex> lock(queue_mu_);
  drained_.wait(lock, [this] { return queue_.empty() && !processing_; });
}

void ScoringEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      // Already stopping; fall through to join below.
    }
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (drain_thread_.joinable()) drain_thread_.join();
  if (config_.manual_drain) flush();
  if (durability_ && !final_checkpoint_done_) {
    // Clean shutdown seals the durable state: the next start recovers from
    // the checkpoint alone, with an empty WAL tail.
    final_checkpoint_done_ = true;
    const auto model = registry_->current();
    durability_->checkpoint_now(store_,
                                model ? model->manifest.version : -1);
  }
}

void ScoringEngine::checkpoint_now() {
  if (!durability_) return;
  flush();
  const auto model = registry_->current();
  durability_->checkpoint_now(store_, model ? model->manifest.version : -1);
}

std::vector<core::Alert> ScoringEngine::alerts() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return alerts_;
}

std::vector<ScoredRow> ScoringEngine::take_scored_rows() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<ScoredRow> out;
  out.swap(scored_rows_);
  return out;
}

EngineStats ScoringEngine::stats() const {
  EngineStats out;
  out.submitted = metrics_.submitted->value();
  out.accepted = metrics_.accepted->value();
  out.shed = metrics_.shed->value();
  out.rejected = metrics_.rejected->value();
  out.unscored_no_model = metrics_.unscored_no_model->value();
  out.records_processed = metrics_.records_processed->value();
  out.rows_scored = metrics_.rows_scored->value();
  out.synthetic_rows = metrics_.synthetic_rows->value();
  out.batches = metrics_.batches->value();
  out.alerts = metrics_.alerts->value();
  out.model_swaps = metrics_.model_swaps->value();
  out.batch_size = metrics_.batch_size->snapshot();
  out.queue_depth = metrics_.queue_depth->snapshot();
  out.latency_us = metrics_.latency_us->snapshot();
  out.max_queue_depth =
      static_cast<std::size_t>(metrics_.max_queue_depth->value());
  return out;
}

}  // namespace mfpa::serve
