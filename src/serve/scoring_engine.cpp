#include "serve/scoring_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "data/matrix.hpp"

namespace mfpa::serve {

ScoringEngine::ScoringEngine(const ModelRegistry& registry, EngineConfig config)
    : registry_(&registry), config_(config), store_(config.store) {
  if (config_.queue_capacity == 0 || config_.max_batch == 0) {
    throw std::invalid_argument(
        "ScoringEngine: queue_capacity and max_batch must be positive");
  }
  stats_.batch_size = stats::Histogram(
      0.0, static_cast<double>(config_.max_batch) + 1.0,
      std::min<std::size_t>(config_.max_batch + 1, 512));
  stats_.queue_depth = stats::Histogram(
      0.0, static_cast<double>(config_.queue_capacity) + 1.0,
      std::min<std::size_t>(config_.queue_capacity + 1, 128));
  stats_.latency_us = stats::Histogram(0.0, config_.latency_hi_us, 512);
  if (!config_.manual_drain) {
    drain_thread_ = std::thread([this] { drain_loop(); });
  }
}

ScoringEngine::~ScoringEngine() { stop(); }

bool ScoringEngine::submit(const TelemetryUpdate& update) {
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    ++stats_.submitted;
  }
  std::unique_lock<std::mutex> lock(queue_mu_);
  if (config_.shed_on_full && queue_.size() >= config_.queue_capacity) {
    lock.unlock();
    std::lock_guard<std::mutex> rlock(results_mu_);
    ++stats_.shed;
    return false;
  }
  queue_not_full_.wait(lock, [this] {
    return queue_.size() < config_.queue_capacity || stopping_;
  });
  if (stopping_) {
    lock.unlock();
    std::lock_guard<std::mutex> rlock(results_mu_);
    ++stats_.shed;
    return false;
  }
  queue_.push_back({update, Clock::now()});
  {
    std::lock_guard<std::mutex> rlock(results_mu_);
    ++stats_.accepted;
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  }
  lock.unlock();
  queue_not_empty_.notify_one();
  return true;
}

void ScoringEngine::drain_loop() {
  for (;;) {
    std::vector<QueuedUpdate> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_not_empty_.wait(lock,
                            [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) break;  // stopping_ and fully drained
      const std::size_t depth = queue_.size();
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      processing_ = true;
      std::lock_guard<std::mutex> rlock(results_mu_);
      stats_.queue_depth.add(static_cast<double>(depth));
    }
    queue_not_full_.notify_all();
    process_batch(batch);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      processing_ = false;
      if (queue_.empty()) drained_.notify_all();
    }
  }
  std::lock_guard<std::mutex> lock(queue_mu_);
  processing_ = false;
  drained_.notify_all();
}

std::size_t ScoringEngine::drain_once() {
  std::vector<QueuedUpdate> batch;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (queue_.empty()) return 0;
    const std::size_t depth = queue_.size();
    const std::size_t take = std::min(config_.max_batch, queue_.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    std::lock_guard<std::mutex> rlock(results_mu_);
    stats_.queue_depth.add(static_cast<double>(depth));
  }
  queue_not_full_.notify_all();
  return process_batch(batch);
}

std::size_t ScoringEngine::process_batch(std::vector<QueuedUpdate>& batch) {
  // RCU read: one atomic snapshot pins the model (and its encoder/builder
  // inputs) for the whole batch; a concurrent publish affects the next batch.
  auto model = registry_->current();
  if (model && (!cached_model_ ||
                cached_model_->manifest.version != model->manifest.version)) {
    const bool swap = cached_model_ != nullptr;
    cached_model_ = model;
    cached_builder_.emplace(model->make_builder());
    if (swap) {
      std::lock_guard<std::mutex> rlock(results_mu_);
      ++stats_.model_swaps;
    }
  }

  std::vector<PendingRow> rows;
  rows.reserve(batch.size());
  std::uint64_t processed = 0;
  std::uint64_t rejected = 0;
  for (const auto& queued : batch) {
    try {
      store_.ingest(queued.update.drive_id, queued.update.vendor,
                    queued.update.record, rows);
      ++processed;
    } catch (const std::invalid_argument&) {
      // Strict-mode day-order violation: the record is unusable but must
      // never stall the queue; account and move on.
      ++rejected;
    }
  }

  std::vector<double> scores;
  if (!rows.empty() && model) {
    data::Matrix X(0, 0);
    for (const auto& row : rows) {
      X.add_row(cached_builder_->features_of(row.record));
    }
    scores = model->classifier->predict_proba(X);
  }

  const auto now = Clock::now();
  std::lock_guard<std::mutex> rlock(results_mu_);
  ++stats_.batches;
  stats_.batch_size.add(static_cast<double>(batch.size()));
  stats_.records_processed += processed;
  stats_.rejected += rejected;
  for (const auto& queued : batch) {
    stats_.latency_us.add(
        std::chrono::duration<double, std::micro>(now - queued.enqueued)
            .count());
  }
  if (!model) {
    stats_.unscored_no_model += rows.size();
    return batch.size();
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PendingRow& row = rows[i];
    ++stats_.rows_scored;
    if (row.record.synthetic) ++stats_.synthetic_rows;
    const bool crossed = scores[i] >= model->manifest.threshold;
    if (config_.record_scores) {
      scored_rows_.push_back({row.drive_id, row.record.day, scores[i],
                              model->manifest.version, row.record.synthetic});
    }
    if (store_.should_alert(row.drive_id, row.record.day, crossed,
                            config_.alert_policy)) {
      alerts_.push_back({row.drive_id, row.record.day, scores[i]});
      ++stats_.alerts;
    }
  }
  return batch.size();
}

void ScoringEngine::flush() {
  if (config_.manual_drain) {
    while (drain_once() > 0) {
    }
    return;
  }
  std::unique_lock<std::mutex> lock(queue_mu_);
  drained_.wait(lock, [this] { return queue_.empty() && !processing_; });
}

void ScoringEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      // Already stopping; fall through to join below.
    }
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  if (drain_thread_.joinable()) drain_thread_.join();
  if (config_.manual_drain) flush();
}

std::vector<core::Alert> ScoringEngine::alerts() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return alerts_;
}

std::vector<ScoredRow> ScoringEngine::take_scored_rows() {
  std::lock_guard<std::mutex> lock(results_mu_);
  std::vector<ScoredRow> out;
  out.swap(scored_rows_);
  return out;
}

EngineStats ScoringEngine::stats() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  return stats_;
}

}  // namespace mfpa::serve
