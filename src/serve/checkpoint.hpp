// Compacted checkpoints + the DurabilityManager that makes the scoring
// service crash-consistent.
//
// A checkpoint is a point-in-time snapshot of the DriveStateStore (every
// ingestor window, emission cursor, and alert-hysteresis register) plus the
// WAL position and durable-alert count it corresponds to, written with the
// same checksummed framing as model artifacts:
//
//   mfpa_ckpt 1 <payload bytes> <fnv1a-64 hex of payload>
//   checkpoint 1 <lsn> <durable alert count> <model version>
//   <DriveStateStore::save_state image>
//
// Files live under `<dir>/ckpt/ckpt-<lsn>.mfc`, written dot-temp + fsync +
// rename (the model-registry publish idiom), and the two newest are
// retained so a corrupt newest checkpoint falls back one generation — the
// WAL keeps segments back to the retained checkpoint (wal.hpp), so the
// fallback replays a longer tail instead of losing records.
//
// Recovery contract (proved by tests/integration/test_durable_replay):
// newest digest-valid checkpoint -> store; alert log truncated to the
// pinned count; WAL tail after the checkpoint LSN re-applied through the
// normal scoring path. The result is byte-identical alerts to a run that
// never crashed. A checkpoint whose model version differs from the
// registry's current model refuses loudly: replaying records under a
// different model would fabricate an alert stream no real deployment saw.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/online_predictor.hpp"
#include "obs/metrics.hpp"
#include "serve/drive_state_store.hpp"
#include "serve/wal.hpp"

namespace mfpa::serve {

struct DurabilityConfig {
  /// Durable root directory; empty disables durability entirely.
  std::string dir;
  /// Per-shard WAL segment files.
  std::size_t wal_shards = 4;
  /// fsync the WAL every N appended records (0 = only at flush/checkpoint).
  std::size_t group_commit_records = 256;
  /// Take a checkpoint after this many records since the last one
  /// (0 = only at shutdown).
  std::size_t checkpoint_interval_records = 4096;
  /// false only in throwaway tests.
  bool fsync = true;

  bool enabled() const noexcept { return !dir.empty(); }
};

/// What recovery found on disk (surfaced in the serve-replay banner).
struct RecoveryResult {
  bool checkpoint_loaded = false;
  std::uint64_t checkpoint_lsn = 0;   ///< WAL position the snapshot covers
  int model_version = -1;             ///< version pinned by the checkpoint
  std::uint64_t durable_records = 0;  ///< checkpoint_lsn + replayed tail size
  std::vector<core::Alert> alerts;    ///< durable alerts up to the checkpoint
  std::vector<WalEntry> tail;         ///< WAL records to re-apply, LSN order
  WalRecoveryStats wal;
  std::size_t checkpoints_skipped = 0;  ///< corrupt newer checkpoints passed over
};

// --- low-level checkpoint I/O (exposed for tests / fault injection) --------

/// Atomically writes one checkpoint file for `store` at WAL position `lsn`.
void write_checkpoint_file(const std::string& path, const DriveStateStore& store,
                           std::uint64_t lsn, std::uint64_t alert_count,
                           int model_version, bool fsync);

/// Parsed checkpoint header (payload already digest-verified).
struct CheckpointImage {
  std::uint64_t lsn = 0;
  std::uint64_t alert_count = 0;
  int model_version = -1;
  std::string store_state;  ///< DriveStateStore::save_state image
};

/// Loads and verifies one checkpoint file. Throws std::runtime_error on a
/// missing file, bad framing, byte-count mismatch, or digest mismatch.
CheckpointImage load_checkpoint_file(const std::string& path);

/// Checkpoint files under `<dir>/ckpt`, sorted by LSN ascending.
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir);

// --- coordinator -----------------------------------------------------------

/// Owns the WAL writer, the alert log, and the checkpoint cadence for one
/// engine. Single-threaded by contract: every method is called from the
/// engine's drain thread (or before it starts / after it stops).
class DurabilityManager {
 public:
  explicit DurabilityManager(DurabilityConfig config);

  const DurabilityConfig& config() const noexcept { return config_; }

  /// Phase one of startup: loads the newest digest-valid checkpoint into
  /// `store` (which must be empty), truncates the alert log to the pinned
  /// count, and collects the WAL tail to re-apply. `current_model_version`
  /// is the registry's active version; a checkpoint pinned to a different
  /// version throws. After the caller replays `tail` through the scoring
  /// path it must call finish_recovery().
  RecoveryResult recover(DriveStateStore& store, int current_model_version);

  /// Phase two: seals recovery with a fresh checkpoint of the replayed
  /// state and rotates the WAL to a clean generation. Also the correct
  /// "start fresh" call when recover() found nothing.
  void finish_recovery(const DriveStateStore& store, int model_version);

  /// Frames one record into the WAL (group commit applies); returns its LSN.
  std::uint64_t append(std::uint64_t drive_id, int vendor,
                       const sim::DailyRecord& record);

  /// Appends one raised alert to the durable alert log.
  void append_alert(const core::Alert& alert);

  /// Checkpoint-cadence hook, called after every processed batch; takes a
  /// checkpoint when checkpoint_interval_records have been appended since
  /// the last one.
  void on_batch_end(const DriveStateStore& store, int model_version);

  /// Flushes WAL + alert log, snapshots `store`, writes the checkpoint,
  /// rotates the WAL, and prunes old checkpoints (two retained).
  void checkpoint_now(const DriveStateStore& store, int model_version);

  /// Makes everything appended so far durable (no checkpoint).
  void flush();

  std::uint64_t last_lsn() const noexcept { return wal_.last_lsn(); }
  std::uint64_t alert_count() const noexcept { return alerts_.count(); }

 private:
  DurabilityConfig config_;
  WalWriter wal_;
  AlertLog alerts_;
  std::uint64_t last_checkpoint_lsn_ = 0;
  std::uint64_t prev_checkpoint_lsn_ = 0;  ///< retained fallback generation
  std::size_t records_since_checkpoint_ = 0;
  bool recovered_ = false;

  struct Metrics {
    obs::Counter* writes = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* loads = nullptr;
    obs::Counter* fallbacks = nullptr;
    obs::Counter* pruned = nullptr;
    obs::Gauge* last_lsn = nullptr;
  };
  Metrics metrics_;

  void prune_checkpoints();
};

}  // namespace mfpa::serve
