// Versioned on-disk model artifacts with RCU-style hot-swap — the handoff
// point between the training side (MfpaPipeline / RetrainingScheduler) and
// the long-running scoring service.
//
// On disk, a registry is a directory:
//
//   <dir>/v000001.model     one artifact per published version
//   <dir>/v000002.model
//   <dir>/CURRENT           name of the active version ("v000002")
//
// Every artifact is written to a dot-temporary in the same directory and
// renamed into place, and CURRENT is updated the same way, so a concurrent
// reader (another process, or this process crashing mid-publish) only ever
// observes complete artifacts. An artifact carries a manifest (model type,
// feature group, decision threshold, training window, firmware vocabulary,
// payload checksum) followed by the checksummed ml::save_classifier framing.
//
// In memory, the active version is a std::shared_ptr<const ServedModel>
// guarded by a tiny pointer mutex: readers (the ScoringEngine's batch loop)
// take a snapshot once per *batch* — a copy under an uncontended lock — and
// keep scoring on it while a publisher swaps in the next version. The old
// version stays alive until its last in-flight batch drops the reference
// (RCU-style grace period). A dedicated mutex rather than
// std::atomic<shared_ptr> keeps the swap ThreadSanitizer-provable: the
// libstdc++ atomic specialization hides its pointer word behind an embedded
// lock bit with a futex wait path TSan cannot see through.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/date.hpp"
#include "core/feature_groups.hpp"
#include "core/mfpa.hpp"
#include "core/sample_builder.hpp"
#include "data/label_encoder.hpp"
#include "ml/model.hpp"
#include "obs/metrics.hpp"

namespace mfpa::serve {

/// Deployment metadata stored next to the model payload.
struct ModelManifest {
  int version = 0;
  std::string algorithm;                         ///< "RF", "GBDT", ...
  core::FeatureGroup group = core::FeatureGroup::kSFWB;
  double threshold = 0.5;                        ///< decision threshold
  DayIndex train_lo = 0;                         ///< training window start
  DayIndex train_hi = 0;                         ///< training window end
  std::uint64_t checksum = 0;                    ///< FNV-1a of model payload
};

/// One immutable deployed model version. Instances are shared read-only
/// between the publisher and any number of scoring threads.
struct ServedModel {
  ModelManifest manifest;
  data::LabelEncoder encoder;                    ///< firmware vocabulary
  std::unique_ptr<ml::Classifier> classifier;

  /// Builder producing this model's feature layout. The returned builder
  /// borrows `encoder`; keep the ServedModel (shared_ptr) alive beside it.
  core::SampleBuilder make_builder() const;
};

class ModelRegistry {
 public:
  /// Opens (creating if needed) a registry directory and loads the CURRENT
  /// version when one is recorded. `score_threads` is stamped onto every
  /// loaded classifier's "threads" hyperparameter (0 = all cores) so batch
  /// predict_proba uses the serving tier's pool regardless of how the
  /// trainer was configured. With `compile_models` (the default), every
  /// loaded classifier that supports ml::CompiledInference is flattened at
  /// activation time, so hot-swapped models always serve from the compiled
  /// representation (bit-identical probabilities; see ml/flat_forest.hpp).
  /// With `quantize_models` additionally set, activation also builds the
  /// uint8-quantized representation (compile_quantized()), which
  /// predict_proba then prefers; quantization from the ensemble's own
  /// thresholds is bit-identical too (see ml/quantized_forest.hpp), and a
  /// non-quantizable model silently keeps serving from the flat form.
  explicit ModelRegistry(std::string directory, std::size_t score_threads = 0,
                         bool compile_models = true,
                         bool quantize_models = false);

  const std::string& directory() const noexcept { return dir_; }

  /// Publishes a new version: writes the artifact atomically, repoints
  /// CURRENT, and hot-swaps the in-memory active model. Returns the assigned
  /// version number. Thread-safe; readers are never blocked.
  int publish(const ml::Classifier& model, const data::LabelEncoder& encoder,
              core::FeatureGroup group, double threshold, DayIndex train_lo,
              DayIndex train_hi);

  /// Convenience: publishes a trained pipeline's artifacts (model, firmware
  /// encoder, group, tuned threshold).
  int publish_pipeline(const core::MfpaPipeline& pipeline, DayIndex train_lo,
                       DayIndex train_hi);

  /// Active model snapshot: one shared_ptr copy under the pointer mutex
  /// (held only for the copy, never during artifact I/O). Null when nothing
  /// was published yet.
  std::shared_ptr<const ServedModel> current() const {
    std::lock_guard<std::mutex> lock(current_mu_);
    return current_;
  }

  /// Version number of the active model (0 = none).
  int current_version() const;

  /// Loads one on-disk version (verifying manifest and payload checksums).
  /// Throws std::runtime_error on missing or corrupt artifacts.
  std::shared_ptr<const ServedModel> load_version(int version) const;

  /// Re-points CURRENT (and the in-memory active model) at an already
  /// published version — the rollback path.
  void activate(int version);

  /// Sorted list of version numbers present on disk.
  std::vector<int> versions() const;

 private:
  std::string dir_;
  std::size_t score_threads_;
  bool compile_models_;
  bool quantize_models_;
  mutable std::mutex current_mu_;  ///< guards only the current_ pointer copy
  std::shared_ptr<const ServedModel> current_;
  mutable std::mutex publish_mu_;  ///< serializes publishers, never readers

  void set_current(std::shared_ptr<const ServedModel> served) {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::move(served);
  }

  // Registry instruments (mfpa_registry_*): deploy-side observability. The
  // swap histogram times artifact-load + pointer swap — the window in which a
  // publish/activate is in flight (readers keep scoring throughout).
  struct Metrics {
    obs::Counter* publishes = nullptr;
    obs::Counter* activations = nullptr;
    obs::HistogramMetric* swap_seconds = nullptr;
    obs::Gauge* current_version = nullptr;
  };
  Metrics metrics_;

  std::string artifact_path(int version) const;
  void write_current_marker(int version);
};

}  // namespace mfpa::serve
