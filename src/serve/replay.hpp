// Fleet replay: streams simulated telemetry through the ScoringEngine in
// arrival order (day by day, drive id within a day) the way a production
// ingestion tier would, measures sustained throughput and latency, and
// scores the resulting alert stream against the simulator's ground truth.
// Shared by the `serve-replay` CLI subcommand, bench/bench_serving, and the
// streaming example.
#pragma once

#include <csignal>
#include <cstddef>
#include <functional>
#include <vector>

#include "core/mfpa.hpp"
#include "core/online_predictor.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_engine.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::serve {

/// Everything the replay measured, ready for a table or a JSON bench row.
struct ReplayReport {
  double wall_seconds = 0.0;
  double records_per_sec = 0.0;   ///< submitted / wall_seconds
  std::size_t days_replayed = 0;
  std::size_t records_skipped = 0;   ///< resumed past (already durable)
  std::size_t records_submitted = 0; ///< submitted by this run
  bool interrupted = false;          ///< cancel flag stopped the feed early
  EngineStats engine;
  StoreStats store;
  std::vector<core::Alert> alerts;
  core::DriveLevelMetrics drives;  ///< vs simulator ground truth
};

/// Called at the start of each replay day (before that day's records are
/// submitted) — the hook hot-swap demos and mid-replay retraining use.
using DayHook = std::function<void(DayIndex day)>;

/// Knobs for a single replay pass.
struct ReplayOptions {
  DayHook on_day;
  /// Records of the deterministic arrival order to skip before submitting —
  /// a resuming process sets this to the engine's durable_resume_records()
  /// so the feed re-delivers exactly the not-yet-durable suffix.
  std::size_t skip_records = 0;
  /// Raise SIGKILL after submitting this many records (0 = never). The
  /// crash-recovery tests use this to die mid-stream deterministically,
  /// with no flush or destructor running — as close to power loss as a
  /// process can get.
  std::size_t kill_after_records = 0;
  /// Graceful-shutdown flag (a signal handler sets it): checked between
  /// submissions; when set the feed stops, the queue drains, and the
  /// report is marked interrupted.
  const volatile std::sig_atomic_t* cancel = nullptr;
};

/// Trains an MfpaPipeline on the given telemetry/tickets and publishes the
/// fitted model (classifier + firmware vocabulary + tuned threshold) to the
/// registry. Returns the published version.
int train_and_publish(ModelRegistry& registry, const core::MfpaConfig& config,
                      const std::vector<sim::DriveTimeSeries>& telemetry,
                      const std::vector<sim::TroubleTicket>& tickets);

class FleetReplayer {
 public:
  /// One record of the deterministic arrival order: day-major, drive id
  /// ascending within a day — the order a collection front end would see a
  /// fleet's daily uploads. Exposed so alternative feeds (the net layer's
  /// sharded replay, the loopback client driver) deliver the identical
  /// stream the single-engine replay does.
  struct Arrival {
    DayIndex day = 0;
    std::uint64_t drive_id = 0;
    int vendor = 0;
    const sim::DailyRecord* record = nullptr;
  };

  /// Borrows the telemetry (must outlive the replayer); flattens it into
  /// the deterministic arrival order once.
  explicit FleetReplayer(const std::vector<sim::DriveTimeSeries>& telemetry);

  const std::vector<Arrival>& arrivals() const noexcept { return order_; }
  const std::vector<sim::DriveTimeSeries>& telemetry() const noexcept {
    return *telemetry_;
  }

  std::size_t total_records() const noexcept { return order_.size(); }
  DayIndex first_day() const noexcept { return first_day_; }
  DayIndex last_day() const noexcept { return last_day_; }

  /// Streams every record through the engine at maximum rate, flushes, and
  /// snapshots the engine/store accounting. The engine's alert stream is
  /// evaluated drive-level against the simulator's failure flags.
  ReplayReport replay(ScoringEngine& engine, const DayHook& on_day = {}) const;

  /// Same, with resume / crash-injection / graceful-cancel knobs.
  ReplayReport replay(ScoringEngine& engine, const ReplayOptions& options) const;

  /// Drive-level verdicts for an alert stream against simulator truth: a
  /// failed drive is detected if it has any alert; a healthy drive with any
  /// alert is a false alarm.
  static core::DriveLevelMetrics drive_level(
      const std::vector<core::Alert>& alerts,
      const std::vector<sim::DriveTimeSeries>& telemetry);

 private:
  const std::vector<sim::DriveTimeSeries>* telemetry_;
  std::vector<Arrival> order_;
  DayIndex first_day_ = 0;
  DayIndex last_day_ = 0;
};

}  // namespace mfpa::serve
