#include "serve/drive_state_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "ml/parallel_for.hpp"

namespace mfpa::serve {

DriveStateStore::DriveStateStore(StoreConfig config) : config_(config) {
  const std::size_t n = ml::resolve_threads(config_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  auto& reg = obs::registry();
  metrics_.records_ingested = &reg.counter("mfpa_store_records_ingested_total");
  metrics_.rows_emitted = &reg.counter("mfpa_store_rows_emitted_total");
  metrics_.segments_restarted =
      &reg.counter("mfpa_store_segments_restarted_total");
  metrics_.drives_quarantined =
      &reg.counter("mfpa_store_drives_quarantined_total");
  metrics_.drives_tracked = &reg.gauge("mfpa_store_drives_tracked");
}

DriveStateStore::Shard& DriveStateStore::shard_for(
    std::uint64_t drive_id) const {
  // Fibonacci hash spreads sequential drive ids across stripes.
  const std::uint64_t mixed = drive_id * 0x9E3779B97F4A7C15ULL;
  return *shards_[mixed % shards_.size()];
}

void DriveStateStore::ingest(std::uint64_t drive_id, int vendor,
                             const sim::DailyRecord& record,
                             std::vector<PendingRow>& out) {
  Shard& shard = shard_for(drive_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.drives.try_emplace(
      drive_id, drive_id, vendor, config_.preprocess);
  if (inserted) metrics_.drives_tracked->add(1.0);
  DriveState& state = it->second;
  ++shard.records_ingested;
  metrics_.records_ingested->inc();
  state.ingestor.ingest(record);

  if (!state.quarantine_counted && state.ingestor.quarantined()) {
    state.quarantine_counted = true;
    metrics_.drives_quarantined->inc();
  }

  if (state.ingestor.segments_started() != state.segments_seen) {
    // Long gap cut the segment: the batch path would only ever see the new
    // segment, so emission and alert hysteresis restart from zero.
    state.segments_seen = state.ingestor.segments_started();
    state.emitted = 0;
    state.consecutive = 0;
    state.last_alert = std::numeric_limits<DayIndex>::min();
    ++shard.segments_restarted;
    metrics_.segments_restarted->inc();
  }

  if (!state.ingestor.usable()) return;

  const auto& segment = state.ingestor.segment();
  if (segment.size() > state.emitted) {
    metrics_.rows_emitted->inc(segment.size() - state.emitted);
  }
  for (std::size_t i = state.emitted; i < segment.size(); ++i) {
    out.push_back({drive_id, vendor, segment[i]});
    ++shard.rows_emitted;
  }
  state.emitted = segment.size();

  if (config_.max_records_per_drive > 0 &&
      segment.size() > config_.max_records_per_drive) {
    state.emitted -= state.ingestor.compact(config_.max_records_per_drive);
  }
}

bool DriveStateStore::should_alert(std::uint64_t drive_id, DayIndex day,
                                   bool crossed,
                                   const core::AlertPolicy& policy) {
  Shard& shard = shard_for(drive_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.drives.find(drive_id);
  if (it == shard.drives.end()) {
    throw std::logic_error("DriveStateStore: should_alert for unknown drive " +
                           std::to_string(drive_id));
  }
  DriveState& state = it->second;
  if (!crossed) {
    state.consecutive = 0;
    return false;
  }
  ++state.consecutive;
  if (state.consecutive < policy.min_consecutive) return false;
  if (policy.cooldown_days > 0 &&
      state.last_alert > std::numeric_limits<DayIndex>::min() &&
      day - state.last_alert < policy.cooldown_days) {
    return false;
  }
  state.last_alert = day;
  return true;
}

StoreStats DriveStateStore::stats() const {
  StoreStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.drives_tracked += shard->drives.size();
    out.records_ingested += shard->records_ingested;
    out.rows_emitted += shard->rows_emitted;
    out.segments_restarted += shard->segments_restarted;
    for (const auto& [id, state] : shard->drives) {
      (void)id;
      if (state.ingestor.quarantined()) ++out.drives_quarantined;
      out.ingest.merge(state.ingestor.ingest_stats());
    }
  }
  return out;
}

}  // namespace mfpa::serve
