#include "serve/drive_state_store.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "ml/parallel_for.hpp"

namespace mfpa::serve {

DriveStateStore::DriveStateStore(StoreConfig config) : config_(config) {
  const std::size_t n = ml::resolve_threads(config_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  auto& reg = obs::registry();
  metrics_.records_ingested = &reg.counter("mfpa_store_records_ingested_total");
  metrics_.rows_emitted = &reg.counter("mfpa_store_rows_emitted_total");
  metrics_.segments_restarted =
      &reg.counter("mfpa_store_segments_restarted_total");
  metrics_.drives_quarantined =
      &reg.counter("mfpa_store_drives_quarantined_total");
  metrics_.drives_tracked = &reg.gauge("mfpa_store_drives_tracked");
}

DriveStateStore::Shard& DriveStateStore::shard_for(
    std::uint64_t drive_id) const {
  // Fibonacci hash spreads sequential drive ids across stripes.
  return *shards_[drive_shard(drive_id, shards_.size())];
}

void DriveStateStore::ingest(std::uint64_t drive_id, int vendor,
                             const sim::DailyRecord& record,
                             std::vector<PendingRow>& out) {
  Shard& shard = shard_for(drive_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto [it, inserted] = shard.drives.try_emplace(
      drive_id, drive_id, vendor, config_.preprocess);
  if (inserted) metrics_.drives_tracked->add(1.0);
  DriveState& state = it->second;
  ++shard.records_ingested;
  metrics_.records_ingested->inc();
  state.ingestor.ingest(record);

  if (!state.quarantine_counted && state.ingestor.quarantined()) {
    state.quarantine_counted = true;
    metrics_.drives_quarantined->inc();
  }

  if (state.ingestor.segments_started() != state.segments_seen) {
    // Long gap cut the segment: the batch path would only ever see the new
    // segment, so emission restarts from zero. Alert hysteresis restarts
    // too, but NOT here — rows of the old segment may still be queued for
    // scoring, so the reset is carried on the emitted rows' `segment` tag
    // and applied by should_alert() when scoring crosses the boundary.
    state.segments_seen = state.ingestor.segments_started();
    state.emitted = 0;
    ++shard.segments_restarted;
    metrics_.segments_restarted->inc();
  }

  if (!state.ingestor.usable()) return;

  const auto& segment = state.ingestor.segment();
  if (segment.size() > state.emitted) {
    metrics_.rows_emitted->inc(segment.size() - state.emitted);
  }
  for (std::size_t i = state.emitted; i < segment.size(); ++i) {
    out.push_back({drive_id, vendor, segment[i], state.segments_seen});
    ++shard.rows_emitted;
  }
  state.emitted = segment.size();

  if (config_.max_records_per_drive > 0 &&
      segment.size() > config_.max_records_per_drive) {
    state.emitted -= state.ingestor.compact(config_.max_records_per_drive);
  }
}

bool DriveStateStore::should_alert(std::uint64_t drive_id, DayIndex day,
                                   int segment, bool crossed,
                                   const core::AlertPolicy& policy) {
  Shard& shard = shard_for(drive_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.drives.find(drive_id);
  if (it == shard.drives.end()) {
    throw std::logic_error("DriveStateStore: should_alert for unknown drive " +
                           std::to_string(drive_id));
  }
  DriveState& state = it->second;
  if (segment != state.alert_segment) {
    // First scored row of a new segment: hysteresis restarts exactly like
    // the batch path, which never saw the old segment.
    state.alert_segment = segment;
    state.consecutive = 0;
    state.last_alert = std::numeric_limits<DayIndex>::min();
  }
  if (!crossed) {
    state.consecutive = 0;
    return false;
  }
  ++state.consecutive;
  if (state.consecutive < policy.min_consecutive) return false;
  if (policy.cooldown_days > 0 &&
      state.last_alert > std::numeric_limits<DayIndex>::min() &&
      day - state.last_alert < policy.cooldown_days) {
    return false;
  }
  state.last_alert = day;
  return true;
}

void DriveStateStore::save_state(std::ostream& os) const {
  std::size_t drives = 0;
  std::size_t records_ingested = 0;
  std::size_t rows_emitted = 0;
  std::size_t segments_restarted = 0;
  std::vector<std::pair<std::uint64_t, const DriveState*>> ordered;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    drives += shard->drives.size();
    records_ingested += shard->records_ingested;
    rows_emitted += shard->rows_emitted;
    segments_restarted += shard->segments_restarted;
    for (const auto& [id, state] : shard->drives) {
      ordered.emplace_back(id, &state);
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  os << "store 2 " << records_ingested << ' ' << rows_emitted << ' '
     << segments_restarted << '\n';
  os << "drives " << drives << '\n';
  for (const auto& [id, state] : ordered) {
    os << "drive " << id << ' ' << state->ingestor.vendor() << ' '
       << state->emitted << ' ' << state->segments_seen << ' '
       << (state->quarantine_counted ? 1 : 0) << ' ' << state->consecutive
       << ' ' << state->last_alert << ' ' << state->alert_segment << '\n';
    state->ingestor.save_state(os);
  }
}

void DriveStateStore::load_state(std::istream& is) {
  std::string tag;
  int version = 0;
  std::size_t records_ingested = 0;
  std::size_t rows_emitted = 0;
  std::size_t segments_restarted = 0;
  if (!(is >> tag >> version >> records_ingested >> rows_emitted >>
        segments_restarted) ||
      tag != "store" || version < 1 || version > 2) {
    throw std::runtime_error("DriveStateStore: malformed state header");
  }
  std::size_t n = 0;
  if (!(is >> tag >> n) || tag != "drives" || n > (1u << 26)) {
    throw std::runtime_error("DriveStateStore: malformed drive count");
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!shard->drives.empty()) {
      throw std::logic_error("DriveStateStore: load_state into non-empty store");
    }
    shard->records_ingested = 0;
    shard->rows_emitted = 0;
    shard->segments_restarted = 0;
  }
  // The checkpoint's shard layout is irrelevant: drives re-hash into this
  // store's stripes; the aggregate counters land on shard 0.
  shards_[0]->records_ingested = records_ingested;
  shards_[0]->rows_emitted = rows_emitted;
  shards_[0]->segments_restarted = segments_restarted;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t id = 0;
    int vendor = 0;
    std::size_t emitted = 0;
    int segments_seen = 0;
    int quarantine_counted = 0;
    int consecutive = 0;
    DayIndex last_alert = 0;
    if (!(is >> tag >> id >> vendor >> emitted >> segments_seen >>
          quarantine_counted >> consecutive >> last_alert) ||
        tag != "drive") {
      throw std::runtime_error("DriveStateStore: malformed drive record");
    }
    // v2 adds the segment generation the hysteresis state belongs to; v1
    // checkpoints (taken when the reset was applied eagerly at ingest) are
    // equivalent to state already caught up with the ingest cursor.
    int alert_segment = segments_seen;
    if (version >= 2 && !(is >> alert_segment)) {
      throw std::runtime_error("DriveStateStore: malformed drive record");
    }
    Shard& shard = shard_for(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] =
        shard.drives.try_emplace(id, id, vendor, config_.preprocess);
    if (!inserted) {
      throw std::runtime_error("DriveStateStore: duplicate drive " +
                               std::to_string(id) + " in checkpoint");
    }
    DriveState& state = it->second;
    state.emitted = emitted;
    state.segments_seen = segments_seen;
    state.quarantine_counted = quarantine_counted != 0;
    state.consecutive = consecutive;
    state.last_alert = last_alert;
    state.alert_segment = alert_segment;
    state.ingestor.load_state(is);
    metrics_.drives_tracked->add(1.0);
  }
}

StoreStats DriveStateStore::stats() const {
  StoreStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.drives_tracked += shard->drives.size();
    out.records_ingested += shard->records_ingested;
    out.rows_emitted += shard->rows_emitted;
    out.segments_restarted += shard->segments_restarted;
    for (const auto& [id, state] : shard->drives) {
      (void)id;
      if (state.ingestor.quarantined()) ++out.drives_quarantined;
      out.ingest.merge(state.ingestor.ingest_stats());
    }
  }
  return out;
}

}  // namespace mfpa::serve
