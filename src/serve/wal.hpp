// Checksummed write-ahead log for the scoring service's drive state.
//
// DriveStateStore state (StreamingIngestor windows, AlertPolicy hysteresis)
// is a pure function of the raw record sequence fed to it, so durability
// logs *inputs*, not state deltas: every record the engine is about to
// apply is first framed into a per-shard append-only segment file under
// `<dir>/wal/`, tagged with a globally monotonic LSN assigned in drain
// order. Crash recovery loads the newest valid checkpoint (see
// checkpoint.hpp) and re-applies the WAL tail through the normal scoring
// path, which regenerates byte-identical state and alerts.
//
// Frame layout (little-endian, fixed-width — the FNV-1a v2 idiom of
// ml/serialize applied to binary framing):
//
//   u32 magic   "MFWL"            resync marker for corruption scanning
//   u32 size    payload bytes
//   u64 lsn     global sequence number
//   u8  payload[size]
//   u64 digest  FNV-1a 64 over (size, lsn, payload)
//
// Torn-tail semantics (the btrfs-progs discipline): a frame that runs past
// EOF or fails its digest *with no valid frame after it* is a torn final
// write — the tail is discarded (those records were never acknowledged
// durable; the feed re-delivers them). A corrupt frame *followed by* a
// valid frame is mid-stream corruption and recovery refuses loudly: state
// reconstructed over a hole would silently diverge from the real fleet.
//
// Segments: at every checkpoint the writer rotates to a fresh set of
// per-shard files suffixed with the checkpoint LSN ("shard-000.c42.wal").
// Segments older than the previous retained checkpoint are deleted, so a
// corrupt newest checkpoint can still fall back one generation without a
// WAL gap. Group commit: appends are buffered and fsynced every
// `group_commit_records` records (and always at checkpoint/shutdown),
// trading a bounded post-power-loss replay window for throughput.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/online_predictor.hpp"
#include "obs/metrics.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::serve {

inline constexpr std::uint32_t kWalFrameMagic = 0x4C57464DU;  // "MFWL"

/// One durable ingest record: the raw telemetry update plus its LSN.
struct WalEntry {
  std::uint64_t lsn = 0;
  std::uint64_t drive_id = 0;
  int vendor = 0;
  sim::DailyRecord record;
};

// --- low-level framing (shared by the WAL, the alert log, and tests) ------

/// Appends one frame (magic, size, lsn, payload, digest) to `buf`.
void append_frame(std::string& buf, std::uint64_t lsn,
                  const std::string& payload);

/// One frame decoded from a byte stream.
struct DecodedFrame {
  std::uint64_t lsn = 0;
  std::string payload;
  std::uint64_t digest = 0;       ///< frame digest (used for duplicate checks)
  std::size_t end_offset = 0;     ///< byte offset just past this frame
};

/// Result of scanning one framed file front to back.
struct FrameScan {
  std::vector<DecodedFrame> frames;   ///< valid prefix, in file order
  std::size_t valid_bytes = 0;        ///< bytes covered by `frames`
  std::size_t torn_bytes = 0;         ///< discarded torn/trailing garbage
  bool torn_tail = false;             ///< trailing bytes were discarded
};

/// Scans a framed file, returning every frame of the valid prefix. A torn
/// or corrupt tail is reported in the result; corruption *followed by*
/// another valid frame throws std::runtime_error (mid-stream corruption —
/// the file cannot be trusted past the hole, but data after it provably
/// existed). `what` names the file in diagnostics.
FrameScan scan_frames(const std::string& path);

/// Serializes / parses the WAL payload for one telemetry record.
std::string encode_wal_payload(std::uint64_t drive_id, int vendor,
                               const sim::DailyRecord& record);
WalEntry decode_wal_payload(std::uint64_t lsn, const std::string& payload);

/// Serializes / parses the alert-log payload for one alert.
std::string encode_alert_payload(const core::Alert& alert);
core::Alert decode_alert_payload(const std::string& payload);

// --- writer ----------------------------------------------------------------

struct WalWriterConfig {
  std::string dir;                        ///< durable root (wal/ lives below)
  std::size_t shards = 4;                 ///< per-shard segment files
  std::size_t group_commit_records = 256; ///< fsync every N appends (0 = every flush only)
  bool fsync = true;                      ///< false only in throwaway tests
};

/// Append side of the log. Single-writer by contract (the engine's drain
/// loop); rotate() and flush() are called from the same thread.
class WalWriter {
 public:
  explicit WalWriter(WalWriterConfig config);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the segment files for the generation starting after checkpoint
  /// `base_lsn` (files are created empty; an existing identical generation
  /// is truncated — it can only be a remnant of a crashed rotate).
  void open_generation(std::uint64_t base_lsn);

  /// Frames and buffers one record under the next LSN; returns it. The
  /// record lands on the shard file for its drive. Honors group commit.
  std::uint64_t append(std::uint64_t drive_id, int vendor,
                       const sim::DailyRecord& record);

  /// Writes buffered frames out and fsyncs every dirty segment.
  void flush();

  /// Flushes, then rotates to a fresh generation after checkpoint
  /// `ckpt_lsn`, deleting segment generations older than `keep_from_lsn`.
  void rotate(std::uint64_t ckpt_lsn, std::uint64_t keep_from_lsn);

  /// Deletes every WAL segment on disk (recovery finished; fresh start).
  void reset(std::uint64_t base_lsn);

  std::uint64_t last_lsn() const noexcept { return next_lsn_ - 1; }
  void set_next_lsn(std::uint64_t lsn) noexcept { next_lsn_ = lsn; }

 private:
  struct Segment {
    int fd = -1;
    std::string path;
    std::string pending;   ///< frames not yet written to the fd
    bool dirty = false;    ///< written but not fsynced
  };

  WalWriterConfig config_;
  std::vector<Segment> segments_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t generation_ = 0;     ///< base lsn of the open generation
  std::size_t unsynced_records_ = 0;

  struct Metrics {
    obs::Counter* appends = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* fsyncs = nullptr;
    obs::Counter* rotations = nullptr;
  };
  Metrics metrics_;

  void close_segments();
  void write_out(Segment& seg);
};

// --- recovery --------------------------------------------------------------

/// Accounting of one WAL recovery pass (exported as mfpa_wal_* metrics and
/// surfaced in the serve-replay recovery banner).
struct WalRecoveryStats {
  std::size_t segments_scanned = 0;
  std::size_t records_replayable = 0;  ///< contiguous tail handed back
  std::size_t records_skipped_applied = 0;   ///< lsn <= checkpoint (covered)
  std::size_t records_skipped_duplicate = 0; ///< exact duplicate frames
  std::size_t records_skipped_gap = 0;       ///< beyond the first LSN gap
  std::size_t torn_tails = 0;          ///< files with a discarded tail
};

/// Reads every WAL segment under `<dir>/wal`, validates frames, and merges
/// them into the LSN-contiguous tail starting at `after_lsn + 1`. Exact
/// duplicate frames (same LSN, same digest — segment replayed twice) are
/// dropped; an LSN collision or regression with *different* bytes, and any
/// mid-stream corruption, throw std::runtime_error with the offending file
/// and LSN. Records beyond the first LSN gap are discarded (counted): they
/// were never part of the durable contiguous prefix and the feed will
/// re-deliver them.
std::vector<WalEntry> recover_wal(const std::string& dir,
                                  std::uint64_t after_lsn,
                                  WalRecoveryStats* stats = nullptr);

// --- durable alert log -----------------------------------------------------

/// Append-only framed log of raised alerts, `<dir>/alerts.log`. Frames are
/// numbered by alert ordinal (1-based), so a checkpoint can pin "the first
/// N alerts are durable" and recovery truncates back to exactly N before
/// the WAL replay regenerates the rest.
class AlertLog {
 public:
  AlertLog(std::string dir, bool fsync = true);
  ~AlertLog();

  AlertLog(const AlertLog&) = delete;
  AlertLog& operator=(const AlertLog&) = delete;

  /// Opens for appending after `count` durable alerts (file must already be
  /// truncated to that many frames — see recover_alert_log).
  void open(std::uint64_t count);

  void append(const core::Alert& alert);
  void flush();

  std::uint64_t count() const noexcept { return count_; }

 private:
  std::string dir_;
  bool fsync_;
  int fd_ = -1;
  std::string pending_;
  bool dirty_ = false;
  std::uint64_t count_ = 0;
};

/// Loads the alert log, truncates it to the first `durable_count` alerts
/// (discarding any post-checkpoint tail, torn or not — the WAL replay
/// regenerates those), and returns them in order. Throws when the log
/// holds fewer valid frames than the checkpoint promised (an alert stream
/// hole that replay cannot patch) or is corrupt mid-stream.
std::vector<core::Alert> recover_alert_log(const std::string& dir,
                                           std::uint64_t durable_count);

}  // namespace mfpa::serve
