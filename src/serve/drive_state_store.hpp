// Shard-per-core, lock-striped store of per-drive incremental state.
//
// The batch Preprocessor recomputes a drive's cleaned history from scratch;
// at fleet scale the scoring service instead keeps one StreamingIngestor per
// drive (cumulative WindowsEvent/BSOD counters, short-gap fill, long-gap
// cut, lenient-mode sanitation) so the features for a newly arrived record
// cost O(window), not O(history). Drives hash onto independently locked
// shards, so concurrent ingest for different drives contends only when two
// drives share a stripe; per-drive delivery order is the caller's contract
// (the ScoringEngine's single drain loop preserves queue order).
//
// Emission contract (what keeps the service's alerts equal to the batch
// MfpaPipeline + OnlinePredictor replay): a drive's records are withheld
// until its current segment is usable (min_records real observations, not
// quarantined) and then emitted in order — the catch-up burst first, every
// subsequent cleaned record (synthetic gap-fills included) as it arrives. A
// long gap starts a fresh segment: emission state and alert hysteresis reset
// exactly like the batch path, which would never have seen the old segment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/online_predictor.hpp"
#include "core/preprocess.hpp"
#include "core/streaming.hpp"
#include "obs/metrics.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::serve {

/// Shard index for a drive id under `shards` shards. The Fibonacci-hash
/// spread is shared by the store's lock stripes, the WAL's per-shard
/// segment files, and the net-layer ShardRouter, so "one drive, one shard"
/// holds across all three layers by construction.
inline std::size_t drive_shard(std::uint64_t drive_id,
                               std::size_t shards) noexcept {
  return static_cast<std::size_t>((drive_id * 0x9E3779B97F4A7C15ULL) % shards);
}

struct StoreConfig {
  core::PreprocessConfig preprocess;
  /// Lock stripes; 0 = one per hardware core.
  std::size_t shards = 0;
  /// Per-drive retained records after emission (bounds memory; must cover
  /// any feature window the builder needs). 0 = unbounded.
  std::size_t max_records_per_drive = 16;
};

/// One cleaned record ready for feature extraction + scoring.
struct PendingRow {
  std::uint64_t drive_id = 0;
  int vendor = 0;
  core::ProcessedRecord record;
  /// Segment generation the row belongs to. Alert hysteresis resets when a
  /// drive's scored rows cross into a new segment — carried on the row (not
  /// applied at ingest time) so the reset lands between the right two
  /// *scored* rows even when ingestion runs ahead of scoring within a
  /// micro-batch.
  int segment = 0;
};

/// Aggregate store accounting (snapshot).
struct StoreStats {
  std::size_t drives_tracked = 0;
  std::size_t drives_quarantined = 0;
  std::size_t records_ingested = 0;   ///< raw records fed in
  std::size_t rows_emitted = 0;       ///< cleaned rows handed to scoring
  std::size_t segments_restarted = 0; ///< long-gap cuts across the fleet
  IngestStats ingest;                 ///< merged sanitizer accounting
};

class DriveStateStore {
 public:
  explicit DriveStateStore(StoreConfig config);

  const StoreConfig& config() const noexcept { return config_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Feeds one raw record, appending any rows that became ready for scoring
  /// to `out` (in per-drive day order). Strict mode propagates the
  /// sanitizer's std::invalid_argument on day-order violations; lenient mode
  /// absorbs them into the drive's ingest accounting.
  void ingest(std::uint64_t drive_id, int vendor,
              const sim::DailyRecord& record, std::vector<PendingRow>& out);

  /// Applies the alert policy (consecutive-crossing hysteresis + cooldown)
  /// for one scored row, mirroring OnlinePredictor's state machine. Must be
  /// called in the same order rows were emitted, with each row's `segment`;
  /// a segment change resets the hysteresis exactly like the batch path
  /// restarting on the new segment. Returns true when an alert should be
  /// raised.
  bool should_alert(std::uint64_t drive_id, DayIndex day, int segment,
                    bool crossed, const core::AlertPolicy& policy);

  /// Merged accounting across all shards (takes every stripe briefly).
  StoreStats stats() const;

  /// Serializes every tracked drive's full state (ingestor, emission cursor,
  /// alert hysteresis) plus the aggregate counters, drives ordered by id so
  /// the image is deterministic regardless of shard count or hash-map
  /// iteration order. load_state() rebuilds the fleet into the *current*
  /// shard layout (aggregate counters land on shard 0), so a checkpoint
  /// taken with N shards restores correctly under M. Not thread-safe against
  /// concurrent ingest — call from the single drain thread or before start.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  struct DriveState {
    explicit DriveState(std::uint64_t id, int vendor,
                        const core::PreprocessConfig& config)
        : ingestor(id, vendor, config) {}
    core::StreamingIngestor ingestor;
    std::size_t emitted = 0;  ///< segment records already handed out
    int segments_seen = 0;
    bool quarantine_counted = false;  ///< metrics: transition seen
    // Alert-policy state (OnlinePredictor's loop variables, kept per drive).
    // `alert_segment` is the segment generation the state belongs to — it
    // trails `segments_seen` while already-emitted rows of the old segment
    // are still being scored, which is why the reset cannot happen at
    // ingest time (it would be batch-boundary dependent).
    int consecutive = 0;
    DayIndex last_alert = std::numeric_limits<DayIndex>::min();
    int alert_segment = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, DriveState> drives;
    std::size_t records_ingested = 0;
    std::size_t rows_emitted = 0;
    std::size_t segments_restarted = 0;
  };

  StoreConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Fleet-level registry instruments (mfpa_store_*). The per-shard counters
  // above stay authoritative for StoreStats (per-store accounting); these
  // mirror the same events into the process-wide registry for exporters.
  struct Metrics {
    obs::Counter* records_ingested = nullptr;
    obs::Counter* rows_emitted = nullptr;
    obs::Counter* segments_restarted = nullptr;
    obs::Counter* drives_quarantined = nullptr;
    obs::Gauge* drives_tracked = nullptr;
  };
  Metrics metrics_;

  Shard& shard_for(std::uint64_t drive_id) const;
};

}  // namespace mfpa::serve
