// Micro-batched, hot-swappable scoring service over the trained MFPA models.
//
// Producers (telemetry receivers, the replay driver) push per-drive daily
// records into a bounded ingress queue; a drain loop pulls up to
// `max_batch` records at a time, runs them through the DriveStateStore
// (incremental cleaning), extracts feature rows with the active model's
// builder, scores the whole batch in one predict_proba call on the
// ml/parallel_for pool, and applies the AlertPolicy per drive. Scores are
// per-row and the drain is single-threaded, so results are independent of
// batch boundaries, queue timing, and the scoring thread count — the
// batch/online parity tests rely on this.
//
// Backpressure: when the queue is full, submit() either blocks (default;
// producers slow to the service's sustainable rate) or sheds the record with
// accounting (`shed_on_full`) — a deliberately load-shedding deployment.
//
// Hot swap: every batch starts by atomically snapshotting the registry's
// current model (RCU read). A publish lands between batches: in-flight
// records finish on the old version (never dropped, never blocked), the
// next batch scores on the new one, and `model_swaps` counts the
// transitions observed.
//
// Observability: every throughput counter and batch-size / queue-depth /
// latency histogram lives in the process-wide obs::MetricsRegistry
// (mfpa_serve_* families, one label set per engine instance), so the same
// numbers a fleet operator graphs are exported by `serve-replay
// --metrics-out`, `mfpa metrics`, and bench/bench_serving. EngineStats is a
// point-in-time snapshot of this engine's instruments — the legacy ad-hoc
// counters were migrated onto the registry without changing the snapshot
// contract (see docs/OBSERVABILITY.md).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "core/online_predictor.hpp"
#include "obs/metrics.hpp"
#include "serve/checkpoint.hpp"
#include "serve/drive_state_store.hpp"
#include "serve/model_registry.hpp"
#include "sim/telemetry.hpp"

namespace mfpa::serve {

/// One queued unit of work: a drive's daily upload.
struct TelemetryUpdate {
  std::uint64_t drive_id = 0;
  int vendor = 0;
  sim::DailyRecord record;
};

struct EngineConfig {
  StoreConfig store;
  core::AlertPolicy alert_policy;
  std::size_t queue_capacity = 4096;
  std::size_t max_batch = 256;
  /// When true, submit() drops the record (counted) instead of blocking on a
  /// full queue.
  bool shed_on_full = false;
  /// When true, every scored row is retained for inspection (parity tests,
  /// the example); a production deployment leaves this off.
  bool record_scores = false;
  /// When true, no drain thread is started; the owner calls drain_once()
  /// explicitly (deterministic unit tests, single-threaded embedding).
  bool manual_drain = false;
  /// Histogram range for per-record latency, microseconds.
  double latency_hi_us = 50000.0;
  /// Value of the `engine` label on this engine's mfpa_serve_* instruments.
  /// Empty picks the next process-wide sequence number (the historical
  /// behaviour); the ShardRouter sets "shard-N" so per-shard queue depth,
  /// high-water-mark, and shed counts are observable per shard (and stable
  /// across runs, unlike the sequence numbers).
  std::string instance_label;
  /// Crash consistency (WAL + checkpoints). Durability is off unless a
  /// durable directory is configured; see docs/DURABILITY.md.
  DurabilityConfig durability;
};

/// One retained scored row (record_scores mode).
struct ScoredRow {
  std::uint64_t drive_id = 0;
  DayIndex day = 0;
  double score = 0.0;
  int model_version = 0;
  bool synthetic = false;
};

/// Point-in-time copy of this engine's registry instruments. Histograms are
/// copied whole so callers can take quantiles without holding engine locks.
struct EngineStats {
  std::uint64_t submitted = 0;        ///< submit() calls
  std::uint64_t accepted = 0;         ///< enqueued (submitted - shed)
  std::uint64_t shed = 0;             ///< dropped by shed_on_full
  std::uint64_t rejected = 0;         ///< strict-mode day-order violations
  std::uint64_t unscored_no_model = 0;///< rows ready before any publish
  std::uint64_t records_processed = 0;///< records drained through the store
  std::uint64_t rows_scored = 0;      ///< cleaned rows scored (incl. synthetic)
  std::uint64_t synthetic_rows = 0;   ///< gap-fill rows among rows_scored
  std::uint64_t batches = 0;
  std::uint64_t alerts = 0;
  std::uint64_t model_swaps = 0;      ///< version changes observed by the drain
  stats::Histogram batch_size{0.0, 1.0, 1};     ///< replaced in snapshot
  stats::Histogram queue_depth{0.0, 1.0, 1};
  stats::Histogram latency_us{0.0, 1.0, 1};
  std::size_t max_queue_depth = 0;
};

class ScoringEngine {
 public:
  /// The registry must outlive the engine. A model need not be published
  /// yet: rows that become scoreable before the first publish are counted
  /// as `unscored_no_model` and the queue keeps draining (the service
  /// starts, the model catches up).
  ///
  /// With config.durability enabled the constructor recovers before the
  /// drain thread starts: newest valid checkpoint into the store, durable
  /// alerts into the alert stream, the WAL tail re-applied through the
  /// normal scoring path. Recovery failures (mid-stream corruption, model
  /// version mismatch, alert-stream hole) throw std::runtime_error.
  ScoringEngine(const ModelRegistry& registry, EngineConfig config);
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  const EngineConfig& config() const noexcept { return config_; }
  const DriveStateStore& store() const noexcept { return store_; }

  /// Enqueues one record. Returns false only when shed_on_full dropped it.
  bool submit(const TelemetryUpdate& update);

  /// Blocks until everything submitted so far has been drained and scored.
  /// (Manual-drain mode: drains inline on the calling thread.)
  void flush();

  /// Drains and scores at most one micro-batch; returns the number of
  /// records processed (manual_drain mode; also safe while stopped).
  std::size_t drain_once();

  /// Stops the drain thread after flushing. Idempotent; the destructor
  /// calls it.
  void stop();

  /// Alerts raised so far, in emission order.
  std::vector<core::Alert> alerts() const;

  /// Retained rows (record_scores mode), in scoring order; clears the log.
  std::vector<ScoredRow> take_scored_rows();

  EngineStats stats() const;

  /// Records durably applied before this process started (checkpoint +
  /// replayed WAL tail). A resuming feed skips this many records of its
  /// deterministic delivery order. 0 when durability is off or the durable
  /// dir was empty.
  std::uint64_t durable_resume_records() const noexcept {
    return durable_resume_records_;
  }

  /// What recovery found (tail omitted); nullopt when durability is off.
  const std::optional<RecoveryResult>& recovery() const noexcept {
    return recovery_;
  }

  /// Flushes the queue and writes a final checkpoint (durability on);
  /// called by stop(), exposed for graceful-shutdown paths that want the
  /// durable state sealed before process exit.
  void checkpoint_now();

 private:
  using Clock = std::chrono::steady_clock;
  struct QueuedUpdate {
    TelemetryUpdate update;
    Clock::time_point enqueued;
  };

  const ModelRegistry* registry_;
  EngineConfig config_;
  DriveStateStore store_;

  // Durability (null when disabled). `recovering_` suppresses WAL appends
  // and checkpoint cadence while the constructor re-applies the WAL tail
  // through process_batch — those records are already durable.
  std::unique_ptr<DurabilityManager> durability_;
  bool recovering_ = false;
  bool final_checkpoint_done_ = false;
  std::uint64_t durable_resume_records_ = 0;
  std::optional<RecoveryResult> recovery_;

  // Ingress queue.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable drained_;
  std::deque<QueuedUpdate> queue_;
  bool stopping_ = false;
  bool processing_ = false;

  // Cached builder for the active model version (drain loop only).
  std::shared_ptr<const ServedModel> cached_model_;
  std::optional<core::SampleBuilder> cached_builder_;

  // Registry instruments (mfpa_serve_*, labeled per engine instance so a
  // snapshot reads back exactly this engine's traffic). Lock-free hot path:
  // counters/histograms are relaxed atomics; results_mu_ now only guards
  // the alert/score logs.
  struct Metrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* unscored_no_model = nullptr;
    obs::Counter* records_processed = nullptr;
    obs::Counter* rows_scored = nullptr;
    obs::Counter* synthetic_rows = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* alerts = nullptr;
    obs::Counter* model_swaps = nullptr;
    obs::HistogramMetric* batch_size = nullptr;
    obs::HistogramMetric* queue_depth = nullptr;
    obs::HistogramMetric* latency_us = nullptr;
    obs::Gauge* max_queue_depth = nullptr;
  };
  Metrics metrics_;

  // Retained results (alert stream, optional score log).
  mutable std::mutex results_mu_;
  std::vector<core::Alert> alerts_;
  std::vector<ScoredRow> scored_rows_;

  std::thread drain_thread_;

  void drain_loop();
  std::size_t process_batch(std::vector<QueuedUpdate>& batch);
  void recover_durable_state();
};

}  // namespace mfpa::serve
