#include "serve/replay.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>

namespace mfpa::serve {

int train_and_publish(ModelRegistry& registry, const core::MfpaConfig& config,
                      const std::vector<sim::DriveTimeSeries>& telemetry,
                      const std::vector<sim::TroubleTicket>& tickets) {
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(telemetry, tickets);
  DayIndex lo = report.split_day;
  for (const auto& series : telemetry) {
    if (!series.records.empty()) lo = std::min(lo, series.records.front().day);
  }
  return registry.publish_pipeline(pipeline, lo, report.split_day);
}

FleetReplayer::FleetReplayer(
    const std::vector<sim::DriveTimeSeries>& telemetry)
    : telemetry_(&telemetry) {
  std::size_t total = 0;
  for (const auto& series : telemetry) total += series.records.size();
  order_.reserve(total);
  for (const auto& series : telemetry) {
    for (const auto& record : series.records) {
      order_.push_back({record.day, series.drive_id, series.vendor, &record});
    }
  }
  std::sort(order_.begin(), order_.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.day != b.day) return a.day < b.day;
              return a.drive_id < b.drive_id;
            });
  if (!order_.empty()) {
    first_day_ = order_.front().day;
    last_day_ = order_.back().day;
  }
}

ReplayReport FleetReplayer::replay(ScoringEngine& engine,
                                   const DayHook& on_day) const {
  ReplayOptions options;
  options.on_day = on_day;
  return replay(engine, options);
}

ReplayReport FleetReplayer::replay(ScoringEngine& engine,
                                   const ReplayOptions& options) const {
  ReplayReport report;
  const auto start = std::chrono::steady_clock::now();
  DayIndex current_day = first_day_ - 1;
  std::size_t index = 0;
  for (const Arrival& arrival : order_) {
    if (index++ < options.skip_records) {
      // Already durably applied by a previous process; the engine holds the
      // recovered state, so re-submitting would double-count.
      ++report.records_skipped;
      current_day = arrival.day;
      continue;
    }
    if (options.cancel != nullptr && *options.cancel) {
      report.interrupted = true;
      break;
    }
    if (arrival.day != current_day) {
      current_day = arrival.day;
      ++report.days_replayed;
      if (options.on_day) options.on_day(current_day);
    }
    engine.submit({arrival.drive_id, arrival.vendor, *arrival.record});
    ++report.records_submitted;
    if (options.kill_after_records > 0 &&
        report.records_submitted >= options.kill_after_records) {
      // Die exactly as a power cut would: no flush, no destructors.
      std::raise(SIGKILL);
    }
  }
  engine.flush();
  const auto end = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  report.engine = engine.stats();
  report.store = engine.store().stats();
  report.alerts = engine.alerts();
  report.records_per_sec =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.engine.submitted) / report.wall_seconds
          : 0.0;
  report.drives = drive_level(report.alerts, *telemetry_);
  return report;
}

core::DriveLevelMetrics FleetReplayer::drive_level(
    const std::vector<core::Alert>& alerts,
    const std::vector<sim::DriveTimeSeries>& telemetry) {
  std::unordered_set<std::uint64_t> alerted;
  alerted.reserve(alerts.size());
  for (const auto& alert : alerts) alerted.insert(alert.drive_id);
  core::DriveLevelMetrics metrics;
  for (const auto& series : telemetry) {
    if (series.failed) {
      ++metrics.faulty_drives;
      if (alerted.count(series.drive_id)) ++metrics.detected_drives;
    } else {
      ++metrics.healthy_drives;
      if (alerted.count(series.drive_id)) ++metrics.false_alarm_drives;
    }
  }
  return metrics;
}

}  // namespace mfpa::serve
