#include "serve/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/wire.hpp"
#include "ml/checksum.hpp"
#include "serve/drive_state_store.hpp"

namespace mfpa::serve {
namespace fs = std::filesystem;

namespace {

// Little-endian fixed-width packing shared with every binary format in the
// tree (see common/wire.hpp — extracted from here when net/protocol adopted
// the same framing conventions).
using wire::ByteReader;
using wire::put_f32;
using wire::put_f64;
using wire::put_i32;
using wire::put_u16;
using wire::put_u32;
using wire::put_u64;

constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8;  // magic, size, lsn
constexpr std::size_t kFrameDigestBytes = 8;
constexpr std::uint32_t kMaxFramePayload = 1u << 24;  // sanity bound

/// Tries to decode a frame at `off`; returns nullopt when the bytes there
/// are not a complete, digest-valid frame.
std::optional<DecodedFrame> try_frame_at(const std::string& bytes,
                                         std::size_t off) {
  if (off + kFrameHeaderBytes + kFrameDigestBytes > bytes.size()) {
    return std::nullopt;
  }
  if (wire::read_u32_at(bytes.data(), off) != kWalFrameMagic) {
    return std::nullopt;
  }
  const std::uint32_t size = wire::read_u32_at(bytes.data(), off + 4);
  if (size > kMaxFramePayload) return std::nullopt;
  const std::size_t total = kFrameHeaderBytes + size + kFrameDigestBytes;
  if (off + total > bytes.size()) return std::nullopt;
  // Digest covers (size, lsn, payload) — everything after the magic.
  const std::uint64_t want =
      wire::read_u64_at(bytes.data(), off + kFrameHeaderBytes + size);
  const std::uint64_t got = ml::fnv1a(
      std::string_view(bytes.data() + off + 4, 4 + 8 + size));
  if (want != got) return std::nullopt;
  DecodedFrame frame;
  frame.lsn = wire::read_u64_at(bytes.data(), off + 8);
  frame.payload = bytes.substr(off + kFrameHeaderBytes, size);
  frame.digest = want;
  frame.end_offset = off + total;
  return frame;
}

std::string read_whole_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    throw std::runtime_error("wal: cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void fsync_fd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    throw std::runtime_error("wal: fsync failed for " + path);
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort; the data fsync is the real barrier
  ::fsync(fd);
  ::close(fd);
}

std::string shard_segment_name(std::size_t shard, std::uint64_t base_lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "shard-%03zu.c%llu.wal", shard,
                static_cast<unsigned long long>(base_lsn));
  return buf;
}

/// Parses "shard-012.c42.wal" -> (12, 42); nullopt for other names.
std::optional<std::pair<std::size_t, std::uint64_t>> parse_segment_name(
    const std::string& name) {
  if (!name.starts_with("shard-") || !name.ends_with(".wal")) {
    return std::nullopt;
  }
  const std::size_t dot = name.find(".c");
  if (dot == std::string::npos) return std::nullopt;
  try {
    const std::size_t shard = std::stoul(name.substr(6, dot - 6));
    const std::uint64_t base =
        std::stoull(name.substr(dot + 2, name.size() - 4 - (dot + 2)));
    return std::make_pair(shard, base);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

void append_frame(std::string& buf, std::uint64_t lsn,
                  const std::string& payload) {
  const std::size_t body_start = buf.size() + 4;  // digest region starts here
  put_u32(buf, kWalFrameMagic);
  put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  put_u64(buf, lsn);
  buf.append(payload);
  const std::uint64_t digest = ml::fnv1a(
      std::string_view(buf.data() + body_start, buf.size() - body_start));
  put_u64(buf, digest);
}

FrameScan scan_frames(const std::string& path) {
  const std::string bytes = read_whole_file(path);
  FrameScan scan;
  std::size_t off = 0;
  while (off < bytes.size()) {
    auto frame = try_frame_at(bytes, off);
    if (frame.has_value()) {
      off = frame->end_offset;
      scan.valid_bytes = off;
      scan.frames.push_back(std::move(*frame));
      continue;
    }
    // Corrupt or incomplete bytes at `off`. If any complete valid frame
    // exists later in the file, this is mid-stream corruption: refuse.
    for (std::size_t probe = off + 1; probe + 1 < bytes.size(); ++probe) {
      if (try_frame_at(bytes, probe).has_value()) {
        throw std::runtime_error(
            "wal: mid-stream corruption in " + path + " at byte " +
            std::to_string(off) + " (valid frame follows at byte " +
            std::to_string(probe) + "); refusing to recover past a hole");
      }
    }
    scan.torn_tail = true;
    scan.torn_bytes = bytes.size() - off;
    break;
  }
  return scan;
}

std::string encode_wal_payload(std::uint64_t drive_id, int vendor,
                               const sim::DailyRecord& record) {
  std::string buf;
  buf.reserve(8 + 4 + 4 + 4 + sim::kNumSmartAttrs * 4 +
              sim::kNumWindowsEvents * 2 + sim::kNumBsodCodes * 2);
  put_u64(buf, drive_id);
  put_i32(buf, vendor);
  put_i32(buf, record.day);
  put_u32(buf, record.firmware_index);
  for (const float v : record.smart) put_f32(buf, v);
  for (const std::uint16_t v : record.w) put_u16(buf, v);
  for (const std::uint16_t v : record.b) put_u16(buf, v);
  return buf;
}

WalEntry decode_wal_payload(std::uint64_t lsn, const std::string& payload) {
  ByteReader r(payload, "wal record");
  WalEntry entry;
  entry.lsn = lsn;
  entry.drive_id = r.u64();
  entry.vendor = r.i32();
  entry.record.day = r.i32();
  entry.record.firmware_index = static_cast<std::uint8_t>(r.u32());
  for (auto& v : entry.record.smart) v = r.f32();
  for (auto& v : entry.record.w) v = r.u16();
  for (auto& v : entry.record.b) v = r.u16();
  r.expect_done();
  return entry;
}

std::string encode_alert_payload(const core::Alert& alert) {
  std::string buf;
  put_u64(buf, alert.drive_id);
  put_i32(buf, alert.day);
  put_f64(buf, alert.score);
  return buf;
}

core::Alert decode_alert_payload(const std::string& payload) {
  ByteReader r(payload, "alert record");
  core::Alert alert;
  alert.drive_id = r.u64();
  alert.day = r.i32();
  alert.score = r.f64();
  r.expect_done();
  return alert;
}

// --- WalWriter -------------------------------------------------------------

WalWriter::WalWriter(WalWriterConfig config) : config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  fs::create_directories(fs::path(config_.dir) / "wal");
  auto& reg = obs::registry();
  metrics_.appends = &reg.counter("mfpa_wal_appends_total");
  metrics_.bytes = &reg.counter("mfpa_wal_bytes_total");
  metrics_.fsyncs = &reg.counter("mfpa_wal_fsyncs_total");
  metrics_.rotations = &reg.counter("mfpa_wal_rotations_total");
}

WalWriter::~WalWriter() {
  try {
    flush();
  } catch (...) {
    // Destructor: nothing sane to do; the tail is torn, recovery handles it.
  }
  close_segments();
}

void WalWriter::close_segments() {
  for (auto& seg : segments_) {
    if (seg.fd >= 0) ::close(seg.fd);
  }
  segments_.clear();
}

void WalWriter::open_generation(std::uint64_t base_lsn) {
  close_segments();
  generation_ = base_lsn;
  const fs::path wal_dir = fs::path(config_.dir) / "wal";
  segments_.resize(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    Segment& seg = segments_[s];
    seg.path = (wal_dir / shard_segment_name(s, base_lsn)).string();
    seg.fd = ::open(seg.path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (seg.fd < 0) {
      throw std::runtime_error("wal: cannot create segment " + seg.path);
    }
  }
  fsync_dir(wal_dir.string());
}

std::uint64_t WalWriter::append(std::uint64_t drive_id, int vendor,
                                const sim::DailyRecord& record) {
  if (segments_.empty()) {
    throw std::logic_error("WalWriter: append before open_generation");
  }
  const std::uint64_t lsn = next_lsn_++;
  // Same Fibonacci spread as DriveStateStore's lock stripes — one drive's
  // records stay within one segment file.
  Segment& seg = segments_[drive_shard(drive_id, segments_.size())];
  const std::size_t before = seg.pending.size();
  append_frame(seg.pending, lsn, encode_wal_payload(drive_id, vendor, record));
  metrics_.appends->inc();
  metrics_.bytes->inc(seg.pending.size() - before);
  ++unsynced_records_;
  if (config_.group_commit_records > 0 &&
      unsynced_records_ >= config_.group_commit_records) {
    flush();
  }
  return lsn;
}

void WalWriter::write_out(Segment& seg) {
  if (seg.pending.empty()) return;
  const char* data = seg.pending.data();
  std::size_t left = seg.pending.size();
  while (left > 0) {
    const ssize_t n = ::write(seg.fd, data, left);
    if (n < 0) {
      throw std::runtime_error("wal: write failed for " + seg.path);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  seg.pending.clear();
  seg.dirty = true;
}

void WalWriter::flush() {
  for (auto& seg : segments_) {
    write_out(seg);
    if (seg.dirty && config_.fsync) {
      fsync_fd(seg.fd, seg.path);
      metrics_.fsyncs->inc();
    }
    seg.dirty = false;
  }
  unsynced_records_ = 0;
}

void WalWriter::rotate(std::uint64_t ckpt_lsn, std::uint64_t keep_from_lsn) {
  flush();
  open_generation(ckpt_lsn);
  const fs::path wal_dir = fs::path(config_.dir) / "wal";
  for (const auto& entry : fs::directory_iterator(wal_dir)) {
    const auto parsed = parse_segment_name(entry.path().filename().string());
    if (parsed.has_value() && parsed->second < keep_from_lsn) {
      fs::remove(entry.path());
    }
  }
  fsync_dir(wal_dir.string());
  metrics_.rotations->inc();
}

void WalWriter::reset(std::uint64_t base_lsn) {
  close_segments();
  const fs::path wal_dir = fs::path(config_.dir) / "wal";
  if (fs::exists(wal_dir)) {
    for (const auto& entry : fs::directory_iterator(wal_dir)) {
      if (entry.path().extension() == ".wal") fs::remove(entry.path());
    }
  }
  next_lsn_ = base_lsn + 1;
  open_generation(base_lsn);
}

// --- recovery --------------------------------------------------------------

std::vector<WalEntry> recover_wal(const std::string& dir,
                                  std::uint64_t after_lsn,
                                  WalRecoveryStats* stats) {
  WalRecoveryStats local;
  WalRecoveryStats& st = stats ? *stats : local;
  const fs::path wal_dir = fs::path(dir) / "wal";

  struct PendingFrame {
    std::uint64_t lsn;
    std::uint64_t digest;
    std::string payload;
    std::string file;
  };
  std::vector<PendingFrame> merged;

  if (fs::exists(wal_dir)) {
    // Generations ascending, shards within a generation ascending, so the
    // in-file duplicate check below sees originals before replayed copies.
    std::vector<std::pair<std::pair<std::uint64_t, std::size_t>, std::string>>
        files;
    for (const auto& entry : fs::directory_iterator(wal_dir)) {
      const std::string name = entry.path().filename().string();
      const auto parsed = parse_segment_name(name);
      if (!parsed.has_value()) continue;
      files.push_back(
          {{parsed->second, parsed->first}, entry.path().string()});
    }
    std::sort(files.begin(), files.end());

    // lsn -> digest of every frame accepted into the merge so far; an
    // in-file LSN regression is legal only as an exact replay of one of
    // these (a duplicated segment), never as new bytes.
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    for (const auto& [key, path] : files) {
      ++st.segments_scanned;
      FrameScan scan = scan_frames(path);
      if (scan.torn_tail) ++st.torn_tails;
      std::uint64_t last_in_file = 0;
      bool any_in_file = false;
      for (auto& frame : scan.frames) {
        if (any_in_file && frame.lsn <= last_in_file) {
          const auto it = seen.find(frame.lsn);
          if (it == seen.end() || it->second != frame.digest) {
            throw std::runtime_error(
                "wal: LSN regression in " + path + " (lsn " +
                std::to_string(frame.lsn) + " after " +
                std::to_string(last_in_file) +
                " with novel bytes); refusing to recover");
          }
          ++st.records_skipped_duplicate;
          continue;
        }
        any_in_file = true;
        last_in_file = frame.lsn;
        const auto it = seen.find(frame.lsn);
        if (it != seen.end()) {
          if (it->second != frame.digest) {
            throw std::runtime_error(
                "wal: conflicting frames for lsn " + std::to_string(frame.lsn) +
                " (latest in " + path + "); refusing to recover");
          }
          ++st.records_skipped_duplicate;
          continue;
        }
        seen.emplace(frame.lsn, frame.digest);
        merged.push_back(
            {frame.lsn, frame.digest, std::move(frame.payload), path});
      }
    }
  }

  std::sort(merged.begin(), merged.end(),
            [](const PendingFrame& a, const PendingFrame& b) {
              return a.lsn < b.lsn;
            });

  std::vector<WalEntry> tail;
  std::uint64_t expected = after_lsn + 1;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    PendingFrame& frame = merged[i];
    if (frame.lsn <= after_lsn) {
      ++st.records_skipped_applied;
      continue;
    }
    if (frame.lsn != expected) {
      // A hole in the durable prefix: everything past it was never
      // acknowledged and will be re-delivered by the feed.
      st.records_skipped_gap = merged.size() - i;
      break;
    }
    tail.push_back(decode_wal_payload(frame.lsn, frame.payload));
    ++expected;
  }
  st.records_replayable = tail.size();

  auto& reg = obs::registry();
  reg.counter("mfpa_wal_recovery_replayed_total").inc(st.records_replayable);
  reg.counter("mfpa_wal_recovery_skipped_total")
      .inc(st.records_skipped_duplicate + st.records_skipped_gap);
  reg.counter("mfpa_wal_recovery_torn_tails_total").inc(st.torn_tails);
  return tail;
}

// --- AlertLog --------------------------------------------------------------

namespace {
std::string alert_log_path(const std::string& dir) {
  return (fs::path(dir) / "alerts.log").string();
}
}  // namespace

AlertLog::AlertLog(std::string dir, bool fsync)
    : dir_(std::move(dir)), fsync_(fsync) {
  fs::create_directories(dir_);
}

AlertLog::~AlertLog() {
  try {
    flush();
  } catch (...) {
  }
  if (fd_ >= 0) ::close(fd_);
}

void AlertLog::open(std::uint64_t count) {
  if (fd_ >= 0) ::close(fd_);
  const std::string path = alert_log_path(dir_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("wal: cannot open alert log " + path);
  }
  count_ = count;
}

void AlertLog::append(const core::Alert& alert) {
  if (fd_ < 0) throw std::logic_error("AlertLog: append before open");
  append_frame(pending_, ++count_, encode_alert_payload(alert));
}

void AlertLog::flush() {
  if (fd_ < 0 || pending_.empty()) {
    return;
  }
  const char* data = pending_.data();
  std::size_t left = pending_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      throw std::runtime_error("wal: write failed for alert log in " + dir_);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  pending_.clear();
  if (fsync_) fsync_fd(fd_, alert_log_path(dir_));
}

std::vector<core::Alert> recover_alert_log(const std::string& dir,
                                           std::uint64_t durable_count) {
  const std::string path = alert_log_path(dir);
  if (!fs::exists(path)) {
    if (durable_count != 0) {
      throw std::runtime_error(
          "wal: alert log missing but checkpoint records " +
          std::to_string(durable_count) + " durable alerts (" + path + ")");
    }
    return {};
  }
  const FrameScan scan = scan_frames(path);
  if (scan.frames.size() < durable_count) {
    throw std::runtime_error(
        "wal: alert log " + path + " holds " +
        std::to_string(scan.frames.size()) + " alerts but the checkpoint " +
        "records " + std::to_string(durable_count) +
        " durable; the alert stream has a hole replay cannot patch");
  }
  std::vector<core::Alert> alerts;
  alerts.reserve(durable_count);
  std::size_t keep_bytes = 0;
  for (std::size_t i = 0; i < durable_count; ++i) {
    const DecodedFrame& frame = scan.frames[i];
    if (frame.lsn != i + 1) {
      throw std::runtime_error("wal: alert log " + path +
                               " ordinal mismatch at frame " +
                               std::to_string(i + 1));
    }
    alerts.push_back(decode_alert_payload(frame.payload));
    keep_bytes = frame.end_offset;
  }
  // Drop the post-checkpoint tail (torn or healthy): the WAL replay
  // regenerates those alerts and re-appends them.
  if (::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) != 0) {
    throw std::runtime_error("wal: cannot truncate alert log " + path);
  }
  return alerts;
}

}  // namespace mfpa::serve
