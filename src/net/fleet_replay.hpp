// Sharded fleet replay: drives the ShardRouter with the same deterministic
// arrival stream serve::FleetReplayer delivers to a single engine — either
// in-process (replay_sharded: the `serve-replay --shards=N` path and the
// alert-parity tests) or over the loopback binary protocol
// (replay_over_loopback: the `fleet-replay` CLI mode and bench_serving's
// sharded pass, exercising the full encode → TCP → decode → route chain).
//
// Resume protocol: each shard recovers independently, so "how much is
// already durable" is a per-shard count, not a single stream offset. The
// feed computes every arrival's owning shard and skips it while that
// shard's resume budget is unspent — re-delivering exactly each shard's
// not-yet-durable suffix. This works because routing is a pure function of
// drive id and shard count; a resume must therefore use the same --shards
// value as the crashed run (the CLI enforces this by reading the shard
// directories present under the durable root).
#pragma once

#include <csignal>
#include <cstddef>
#include <vector>

#include "net/shard_router.hpp"
#include "serve/replay.hpp"
#include "sim/fleet.hpp"

namespace mfpa::net {

/// Knobs for one sharded replay pass (superset semantics of
/// serve::ReplayOptions, with the per-shard resume counts).
struct ShardedReplayOptions {
  serve::DayHook on_day;
  /// Per-shard records to skip (index = shard). Empty means none; otherwise
  /// the size must equal the router's shard count. Pass
  /// ShardRouter::resume_records() when resuming.
  std::vector<std::size_t> skip_records;
  /// Raise SIGKILL after submitting this many records (0 = never) —
  /// crash-recovery harness, same contract as serve::ReplayOptions.
  std::size_t kill_after_records = 0;
  /// Graceful-shutdown flag; checked between submissions.
  const volatile std::sig_atomic_t* cancel = nullptr;
};

/// What a sharded replay measured. `replay` aggregates across shards;
/// alerts are in the canonical fleet order (day, drive id).
struct ShardedReplayReport {
  serve::ReplayReport replay;          ///< merged totals + merged alerts
  RouterStats router;                  ///< per-shard accounting
  std::uint64_t protocol_errors = 0;   ///< loopback runs only
};

/// Streams the replayer's arrival order through the router in-process.
ShardedReplayReport replay_sharded(ShardRouter& router,
                                   const serve::FleetReplayer& replayer,
                                   const ShardedReplayOptions& options = {});

/// Same stream, but encoded through a TelemetryClient into an IngestServer
/// bound to an ephemeral loopback port in front of the router. The client
/// syncs (kFlush barrier) at the end; the report's totals come from the
/// router after the barrier.
ShardedReplayReport replay_over_loopback(
    ShardRouter& router, const serve::FleetReplayer& replayer,
    const ShardedReplayOptions& options = {});

/// Knobs for the streamed full-fleet replay (the `fleet-replay` CLI mode).
struct StreamedFleetOptions {
  /// Tracked drives generated per chunk; bounds peak telemetry memory to
  /// one chunk regardless of fleet size. Must be >= 1.
  std::size_t chunk_drives = 4096;
  /// Telemetry-generation threads per chunk (0 = hardware concurrency).
  std::size_t generation_threads = 1;
  /// Per-shard resume skips (ShardRouter::resume_records()). A resume must
  /// use the same shard count AND the same chunk_drives as the crashed run
  /// — both change the deterministic delivery order the skips index into.
  std::vector<std::size_t> skip_records;
  /// Feed through the loopback binary protocol instead of in-process calls.
  bool over_loopback = false;
  std::size_t kill_after_records = 0;
  const volatile std::sig_atomic_t* cancel = nullptr;
};

/// Streamed replay result: ShardedReplayReport totals plus stream shape.
struct StreamedFleetReport {
  ShardedReplayReport sharded;
  std::size_t drives_tracked = 0;  ///< tracked subset size (pre-chunking)
  std::size_t chunks = 0;          ///< generation chunks consumed
};

/// Replays an entire (possibly full-scale) fleet scenario through the
/// router with bounded memory: tracked drives are generated in chunks of
/// `chunk_drives`, fed in the per-chunk deterministic arrival order, and
/// freed before the next chunk. Per-drive record order is chunk-invariant,
/// so the alert stream matches an unchunked replay of the same scenario;
/// only the interleaving across drives (and therefore resume offsets)
/// depends on chunk_drives.
StreamedFleetReport replay_fleet_streamed(ShardRouter& router,
                                          sim::FleetSimulator& fleet,
                                          const StreamedFleetOptions& options);

}  // namespace mfpa::net
