// Sharded fleet replay: drives the ShardRouter with the same deterministic
// arrival stream serve::FleetReplayer delivers to a single engine — either
// in-process (replay_sharded: the `serve-replay --shards=N` path and the
// alert-parity tests) or over the loopback binary protocol
// (replay_over_loopback: the `fleet-replay` CLI mode and bench_serving's
// sharded pass, exercising the full encode → TCP → decode → route chain).
//
// Resume protocol: each shard recovers independently, so "how much is
// already durable" is a per-shard count, not a single stream offset. The
// feed computes every arrival's owning shard and skips it while that
// shard's resume budget is unspent — re-delivering exactly each shard's
// not-yet-durable suffix. This works because routing is a pure function of
// drive id and shard count; a resume must therefore use the same --shards
// value as the crashed run (the CLI enforces this by reading the shard
// directories present under the durable root).
#pragma once

#include <csignal>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/shard_router.hpp"
#include "net/sharded_client.hpp"
#include "serve/replay.hpp"
#include "sim/fleet.hpp"

namespace mfpa::net {

/// Knobs for one sharded replay pass (superset semantics of
/// serve::ReplayOptions, with the per-shard resume counts).
struct ShardedReplayOptions {
  serve::DayHook on_day;
  /// Per-shard records to skip (index = shard). Empty means none; otherwise
  /// the size must equal the router's shard count. Pass
  /// ShardRouter::resume_records() when resuming.
  std::vector<std::size_t> skip_records;
  /// Raise SIGKILL after submitting this many records (0 = never) —
  /// crash-recovery harness, same contract as serve::ReplayOptions.
  std::size_t kill_after_records = 0;
  /// Graceful-shutdown flag; checked between submissions.
  const volatile std::sig_atomic_t* cancel = nullptr;
};

/// What a sharded replay measured. `replay` aggregates across shards;
/// alerts are in the canonical fleet order (day, drive id).
struct ShardedReplayReport {
  serve::ReplayReport replay;          ///< merged totals + merged alerts
  RouterStats router;                  ///< per-shard accounting
  std::uint64_t protocol_errors = 0;   ///< loopback runs only
};

/// Streams the replayer's arrival order through the router in-process.
ShardedReplayReport replay_sharded(ShardRouter& router,
                                   const serve::FleetReplayer& replayer,
                                   const ShardedReplayOptions& options = {});

/// Same stream, but encoded through a TelemetryClient into an IngestServer
/// bound to an ephemeral loopback port in front of the router. The client
/// syncs (kFlush barrier) at the end; the report's totals come from the
/// router after the barrier.
ShardedReplayReport replay_over_loopback(
    ShardRouter& router, const serve::FleetReplayer& replayer,
    const ShardedReplayOptions& options = {});

/// Knobs for the streamed full-fleet replay (the `fleet-replay` CLI mode).
struct StreamedFleetOptions {
  /// Tracked drives generated per chunk; bounds peak telemetry memory to
  /// one chunk regardless of fleet size. Must be >= 1.
  std::size_t chunk_drives = 4096;
  /// Telemetry-generation threads per chunk (0 = hardware concurrency).
  std::size_t generation_threads = 1;
  /// Per-shard resume skips (ShardRouter::resume_records()). A resume must
  /// use the same shard count AND the same chunk_drives as the crashed run
  /// — both change the deterministic delivery order the skips index into.
  std::vector<std::size_t> skip_records;
  /// Feed through the loopback binary protocol instead of in-process calls.
  bool over_loopback = false;
  std::size_t kill_after_records = 0;
  const volatile std::sig_atomic_t* cancel = nullptr;
};

/// Streamed replay result: ShardedReplayReport totals plus stream shape.
struct StreamedFleetReport {
  ShardedReplayReport sharded;
  std::size_t drives_tracked = 0;  ///< tracked subset size (pre-chunking)
  std::size_t chunks = 0;          ///< generation chunks consumed
};

/// Replays an entire (possibly full-scale) fleet scenario through the
/// router with bounded memory: tracked drives are generated in chunks of
/// `chunk_drives`, fed in the per-chunk deterministic arrival order, and
/// freed before the next chunk. Per-drive record order is chunk-invariant,
/// so the alert stream matches an unchunked replay of the same scenario;
/// only the interleaving across drives (and therefore resume offsets)
/// depends on chunk_drives.
StreamedFleetReport replay_fleet_streamed(ShardRouter& router,
                                          sim::FleetSimulator& fleet,
                                          const StreamedFleetOptions& options);

/// Knobs for the multi-process replay (`fleet-replay --processes`): the
/// same chunked deterministic stream, but fed through a ShardedClient into
/// per-shard `mfpa shard-serve` processes the caller supervises.
struct MultiprocReplayOptions {
  std::size_t chunk_drives = 4096;
  std::size_t generation_threads = 1;
  /// Per-GLOBAL-shard resume skips (the children's published
  /// resume_records). Same shard-count/chunk_drives caveats as
  /// StreamedFleetOptions.
  std::vector<std::size_t> skip_records;
  /// Shards in the fleet topology (0 = the client's connection count).
  /// Must be set explicitly when feeding through a router endpoint — the
  /// client then has one connection but skips still index by the global
  /// drive hash.
  std::size_t topology_shards = 0;
  /// Crash injection: after this many submitted records (0 = never),
  /// invoke `on_kill` once — the caller SIGKILLs one shard process — and
  /// stop feeding. The uninterrupted record prefix is therefore exact,
  /// which is what makes the resume-and-compare harness deterministic.
  std::size_t kill_after_records = 0;
  std::function<void()> on_kill;
  const volatile std::sig_atomic_t* cancel = nullptr;
};

/// What the multi-process feed measured. Totals come from the final
/// kFlush barrier across every shard (zeroed when the feed was
/// interrupted — a killed topology cannot barrier); alerts live in the
/// children's per-shard alert files, merged after they exit (see
/// merge_alert_files).
struct MultiprocReplayReport {
  FlushAck totals;
  std::size_t records_submitted = 0;
  std::size_t records_skipped = 0;
  std::size_t days_replayed = 0;  ///< per-chunk day passes, not unique days
  std::size_t drives_tracked = 0;
  std::size_t chunks = 0;
  double wall_seconds = 0.0;
  double records_per_sec = 0.0;
  bool interrupted = false;
  /// (drive id, failed) ground truth for drive-level verdicts, resolved by
  /// the caller once the merged alert stream exists.
  std::vector<std::pair<std::uint64_t, bool>> drive_flags;
};

/// Streams the fleet scenario through a shard-aware client into external
/// shard processes. The client must already be connected and handshaken;
/// skip_records.size() must be empty or equal its shard count.
MultiprocReplayReport replay_fleet_multiproc(
    ShardedClient& client, sim::FleetSimulator& fleet,
    const MultiprocReplayOptions& options);

/// Parses and merges per-shard alert files (the `write_alerts_file` CLI
/// format: "<drive_id> <day> <score>" per line) into the canonical fleet
/// order (day, drive id). Scores survive the %.17g round-trip exactly, so
/// re-serializing the merge is byte-identical to a single-process run's
/// alert file. Throws std::runtime_error on an unreadable or malformed
/// file.
std::vector<core::Alert> merge_alert_files(
    const std::vector<std::string>& paths);

}  // namespace mfpa::net
