// Child-process supervisor for the multi-process sharded topology.
//
// The fleet-replay harness (and bench_serving's multi-process pass) runs
// one `mfpa shard-serve` process per shard. This supervisor owns their
// lifecycle: fork/exec with stdout+stderr redirected to a per-shard log
// file, readiness via a port file the child atomically publishes
// ("<port> <resume_records> <model_version>", dot-temp + rename, see
// cli shard-serve), non-blocking exit reaping, targeted SIGKILL for crash
// injection, and SIGTERM-then-wait graceful termination (a TERMed shard
// drains its queue, seals its WAL, writes its alerts file, and exits 0 —
// so "terminate_all() returned and every exit status is 0" *is* the
// durability barrier the replay harness relies on).
//
// Exit statuses are decoded shell-style: WEXITSTATUS for normal exits,
// 128 + signal for signal deaths (SIGKILL → 137), matching what the CI
// smoke greps for. Supervision events are counted in
// mfpa_supervisor_spawns_total / mfpa_supervisor_exits_total{outcome=} /
// mfpa_supervisor_kills_total.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace mfpa::net {

/// One child process to spawn: its argv (argv[0] = binary path), the
/// readiness file it will publish, and where its output goes.
struct ShardProcessSpec {
  std::vector<std::string> argv;
  std::string port_file;
  std::string log_file;
};

/// Parsed contents of a child's readiness file.
struct ShardReadiness {
  std::uint16_t port = 0;
  std::uint64_t resume_records = 0;
  std::uint32_t model_version = 0;
};

class ShardProcessSupervisor {
 public:
  /// Spawns every spec immediately. Throws std::runtime_error when a
  /// fork fails (already-spawned children are killed and reaped).
  explicit ShardProcessSupervisor(std::vector<ShardProcessSpec> specs);
  /// SIGKILLs and reaps anything still running.
  ~ShardProcessSupervisor();

  ShardProcessSupervisor(const ShardProcessSupervisor&) = delete;
  ShardProcessSupervisor& operator=(const ShardProcessSupervisor&) = delete;

  std::size_t count() const noexcept { return children_.size(); }

  /// Blocks until every child has published its readiness file. Throws
  /// std::runtime_error (naming the shard and its log file) when a child
  /// exits first or the timeout lapses.
  void wait_ready(std::chrono::milliseconds timeout);

  /// Per-shard readiness (valid after wait_ready).
  const std::vector<ShardReadiness>& readiness() const noexcept {
    return readiness_;
  }
  /// Convenience: readiness ports in shard order.
  std::vector<std::uint16_t> ports() const;

  /// Reaps any children that have exited (non-blocking). Safe to call
  /// repeatedly.
  void poll_exits();

  /// Whether shard i is still running (after a poll_exits sweep).
  bool alive(std::size_t i);

  /// SIGKILL shard i (crash injection). The exit shows up as status 137.
  void kill_shard(std::size_t i);

  /// SIGTERM every running child, then waits for each; children that
  /// ignore the TERM past `grace` are SIGKILLed. Idempotent.
  void terminate_all(
      std::chrono::milliseconds grace = std::chrono::seconds(30));

  /// Decoded exit status of shard i: WEXITSTATUS for normal exits,
  /// 128 + signal for signal deaths, -1 while still running.
  int exit_status(std::size_t i) const;

 private:
  struct Child {
    ShardProcessSpec spec;
    pid_t pid = -1;
    bool exited = false;
    int raw_status = 0;
  };

  std::vector<Child> children_;
  std::vector<ShardReadiness> readiness_;

  void spawn(Child& child);
  void reap(Child& child, int raw_status);
};

}  // namespace mfpa::net
