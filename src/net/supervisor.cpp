#include "net/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"

namespace mfpa::net {
namespace {

int decode_status(int raw) {
  if (WIFEXITED(raw)) return WEXITSTATUS(raw);
  if (WIFSIGNALED(raw)) return 128 + WTERMSIG(raw);
  return -1;
}

/// Parses "<port> <resume_records> <model_version>". Returns false while
/// the file is absent or incomplete (the rename makes partial contents
/// impossible, but a conservative parse costs nothing).
bool read_readiness(const std::string& path, ShardReadiness& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::uint64_t port = 0;
  std::uint64_t resume = 0;
  std::uint64_t version = 0;
  if (!(in >> port >> resume >> version)) return false;
  if (port == 0 || port > 0xFFFF) return false;
  out.port = static_cast<std::uint16_t>(port);
  out.resume_records = resume;
  out.model_version = static_cast<std::uint32_t>(version);
  return true;
}

}  // namespace

ShardProcessSupervisor::ShardProcessSupervisor(
    std::vector<ShardProcessSpec> specs) {
  children_.reserve(specs.size());
  readiness_.resize(specs.size());
  for (auto& spec : specs) {
    Child child;
    child.spec = std::move(spec);
    children_.push_back(std::move(child));
  }
  for (auto& child : children_) {
    try {
      spawn(child);
    } catch (...) {
      for (auto& started : children_) {
        if (started.pid > 0 && !started.exited) {
          ::kill(started.pid, SIGKILL);
          int raw = 0;
          ::waitpid(started.pid, &raw, 0);
          started.exited = true;
        }
      }
      throw;
    }
  }
}

ShardProcessSupervisor::~ShardProcessSupervisor() {
  for (auto& child : children_) {
    if (child.pid > 0 && !child.exited) {
      ::kill(child.pid, SIGKILL);
      int raw = 0;
      ::waitpid(child.pid, &raw, 0);
      reap(child, raw);
    }
  }
}

void ShardProcessSupervisor::spawn(Child& child) {
  // Stale readiness from a previous run must not satisfy wait_ready.
  ::unlink(child.spec.port_file.c_str());

  std::vector<char*> argv;
  argv.reserve(child.spec.argv.size() + 1);
  for (auto& arg : child.spec.argv) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("supervisor: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    const int log_fd = ::open(child.spec.log_file.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      if (log_fd > STDERR_FILENO) ::close(log_fd);
    }
    ::execv(argv[0], argv.data());
    // Only reached when exec itself failed; 127 matches the shell's
    // command-not-found convention.
    ::_exit(127);
  }
  child.pid = pid;
  obs::registry().counter("mfpa_supervisor_spawns_total", {}).inc();
}

void ShardProcessSupervisor::reap(Child& child, int raw_status) {
  child.exited = true;
  child.raw_status = raw_status;
  obs::registry()
      .counter("mfpa_supervisor_exits_total",
               {{"outcome", WIFSIGNALED(raw_status) ? "signal" : "clean"}})
      .inc();
}

void ShardProcessSupervisor::poll_exits() {
  for (auto& child : children_) {
    if (child.pid <= 0 || child.exited) continue;
    int raw = 0;
    const pid_t rc = ::waitpid(child.pid, &raw, WNOHANG);
    if (rc == child.pid) reap(child, raw);
  }
}

bool ShardProcessSupervisor::alive(std::size_t i) {
  poll_exits();
  const Child& child = children_.at(i);
  return child.pid > 0 && !child.exited;
}

int ShardProcessSupervisor::exit_status(std::size_t i) const {
  const Child& child = children_.at(i);
  return child.exited ? decode_status(child.raw_status) : -1;
}

void ShardProcessSupervisor::wait_ready(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::vector<bool> ready(children_.size(), false);
  for (;;) {
    poll_exits();
    bool all = true;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (ready[i]) continue;
      if (children_[i].exited) {
        throw std::runtime_error(
            "supervisor: shard " + std::to_string(i) +
            " exited with status " + std::to_string(exit_status(i)) +
            " before becoming ready; see " + children_[i].spec.log_file);
      }
      if (read_readiness(children_[i].spec.port_file, readiness_[i])) {
        ready[i] = true;
      } else {
        all = false;
      }
    }
    if (all) return;
    if (std::chrono::steady_clock::now() >= deadline) {
      std::ostringstream msg;
      msg << "supervisor: timed out waiting for shard readiness (pending:";
      for (std::size_t i = 0; i < ready.size(); ++i) {
        if (!ready[i]) msg << ' ' << i;
      }
      msg << ")";
      throw std::runtime_error(msg.str());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::vector<std::uint16_t> ShardProcessSupervisor::ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(readiness_.size());
  for (const auto& r : readiness_) out.push_back(r.port);
  return out;
}

void ShardProcessSupervisor::kill_shard(std::size_t i) {
  Child& child = children_.at(i);
  if (child.pid <= 0 || child.exited) return;
  obs::registry().counter("mfpa_supervisor_kills_total", {}).inc();
  ::kill(child.pid, SIGKILL);
  int raw = 0;
  if (::waitpid(child.pid, &raw, 0) == child.pid) reap(child, raw);
}

void ShardProcessSupervisor::terminate_all(std::chrono::milliseconds grace) {
  poll_exits();
  for (auto& child : children_) {
    if (child.pid > 0 && !child.exited) ::kill(child.pid, SIGTERM);
  }
  const auto deadline = std::chrono::steady_clock::now() + grace;
  for (auto& child : children_) {
    if (child.pid <= 0 || child.exited) continue;
    for (;;) {
      int raw = 0;
      const pid_t rc = ::waitpid(child.pid, &raw, WNOHANG);
      if (rc == child.pid) {
        reap(child, raw);
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        // A shard stuck past the grace window would hang the harness;
        // escalate so the caller at least gets a 137 to report.
        ::kill(child.pid, SIGKILL);
        if (::waitpid(child.pid, &raw, 0) == child.pid) reap(child, raw);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

}  // namespace mfpa::net
