#include "net/shard_router.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace mfpa::net {
namespace {

std::string shard_dir(const std::string& root, std::size_t index) {
  std::string suffix = std::to_string(index);
  while (suffix.size() < 3) suffix.insert(suffix.begin(), '0');
  return root + "/shard-" + suffix;
}

}  // namespace

ShardRouter::ShardRouter(const serve::ModelRegistry& registry,
                         ShardRouterConfig config) {
  if (config.shards == 0) {
    throw std::invalid_argument("ShardRouter: shards must be >= 1");
  }
  topology_shards_ =
      config.topology_shards == 0 ? config.shards : config.topology_shards;
  first_shard_ = config.first_shard;
  if (first_shard_ + config.shards > topology_shards_) {
    throw std::invalid_argument(
        "ShardRouter: owned slice [" + std::to_string(first_shard_) + ", " +
        std::to_string(first_shard_ + config.shards) +
        ") exceeds the topology of " + std::to_string(topology_shards_) +
        " shards");
  }
  engines_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    // Labels and durable directories use the GLOBAL shard index, so the
    // on-disk layout (and the metrics namespace) of N single-shard
    // processes is identical to one N-shard process.
    const std::size_t global = first_shard_ + i;
    serve::EngineConfig engine = config.engine;
    engine.instance_label = "shard-" + std::to_string(global);
    engine.durability.dir =
        config.durable_root.empty() ? std::string()
                                    : shard_dir(config.durable_root, global);
    engines_.push_back(
        std::make_unique<serve::ScoringEngine>(registry, std::move(engine)));
  }
}

ShardRouter::~ShardRouter() { stop(); }

bool ShardRouter::submit(const serve::TelemetryUpdate& update) {
  if (!owns(update.drive_id)) {
    throw std::invalid_argument(
        "ShardRouter: drive " + std::to_string(update.drive_id) +
        " belongs to shard " +
        std::to_string(global_shard_of(update.drive_id)) +
        ", outside this router's slice");
  }
  return engines_[shard_of(update.drive_id)]->submit(update);
}

void ShardRouter::flush() {
  for (auto& engine : engines_) engine->flush();
}

void ShardRouter::stop() {
  for (auto& engine : engines_) engine->stop();
}

void ShardRouter::checkpoint_now() {
  for (auto& engine : engines_) engine->checkpoint_now();
}

std::vector<std::size_t> ShardRouter::resume_records() const {
  std::vector<std::size_t> counts;
  counts.reserve(engines_.size());
  for (const auto& engine : engines_) {
    counts.push_back(static_cast<std::size_t>(engine->durable_resume_records()));
  }
  return counts;
}

std::vector<core::Alert> ShardRouter::alerts() const {
  std::vector<core::Alert> merged;
  for (const auto& engine : engines_) {
    auto shard_alerts = engine->alerts();
    merged.insert(merged.end(), shard_alerts.begin(), shard_alerts.end());
  }
  // Canonical fleet order. A drive alerts at most once per day, and a drive
  // lives on exactly one shard, so (day, drive id) is a total order and the
  // merge is independent of the shard count.
  std::sort(merged.begin(), merged.end(),
            [](const core::Alert& a, const core::Alert& b) {
              if (a.day != b.day) return a.day < b.day;
              return a.drive_id < b.drive_id;
            });
  return merged;
}

RouterStats ShardRouter::stats() const {
  RouterStats out;
  out.shards.reserve(engines_.size());
  for (const auto& engine : engines_) {
    serve::EngineStats s = engine->stats();
    out.records_processed += s.records_processed;
    out.records_shed += s.shed;
    out.rows_scored += s.rows_scored;
    out.alerts += s.alerts;
    out.max_queue_depth = std::max(out.max_queue_depth, s.max_queue_depth);
    out.shards.push_back(std::move(s));
  }
  return out;
}

}  // namespace mfpa::net
