#include "net/sharded_client.hpp"

#include <stdexcept>

#include "serve/drive_state_store.hpp"

namespace mfpa::net {

ShardedClient::ShardedClient(ShardedClientConfig config) {
  if (config.ports.empty()) {
    throw std::invalid_argument("ShardedClient: at least one shard port");
  }
  clients_.reserve(config.ports.size());
  for (std::size_t i = 0; i < config.ports.size(); ++i) {
    auto client =
        std::make_unique<TelemetryClient>(config.ports[i], config.send_buffer);
    Hello claim;
    if (config.claim_topology) {
      claim.shard_index = static_cast<std::uint32_t>(i);
      claim.shard_count = static_cast<std::uint32_t>(config.ports.size());
    }
    claim.model_version = config.model_version;
    client->handshake(claim);
    clients_.push_back(std::move(client));
  }
}

void ShardedClient::send_record(std::uint64_t drive_id, int vendor,
                                const sim::DailyRecord& record) {
  const std::size_t shard = serve::drive_shard(drive_id, clients_.size());
  clients_[shard]->send_record(drive_id, vendor, record);
  ++records_sent_;
}

void ShardedClient::flush_buffers() {
  for (auto& client : clients_) client->flush_buffer();
}

FlushAck ShardedClient::sync() {
  FlushAck total;
  for (auto& client : clients_) {
    const FlushAck ack = client->sync();
    total.records_processed += ack.records_processed;
    total.alerts += ack.alerts;
    total.shed += ack.shed;
  }
  return total;
}

void ShardedClient::close() {
  for (auto& client : clients_) client->close();
}

}  // namespace mfpa::net
