#include "net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mfpa::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

struct ServerMetrics {
  obs::Counter* connections = nullptr;
  obs::Gauge* active = nullptr;
  obs::Counter* bytes_received = nullptr;
  obs::Counter* records = nullptr;
  obs::Counter* flushes = nullptr;
  obs::Counter* misrouted = nullptr;
};

ServerMetrics& server_metrics() {
  // Re-resolved per call so create_isolated()/ScopedMetricsOverride tests
  // see the server's traffic in their own registry.
  thread_local ServerMetrics m;
  auto& reg = obs::registry();
  m.connections = &reg.counter("mfpa_net_connections_total", {});
  m.active = &reg.gauge("mfpa_net_connections_active", {});
  m.bytes_received = &reg.counter("mfpa_net_bytes_received_total", {});
  m.records = &reg.counter("mfpa_net_records_total", {});
  m.flushes = &reg.counter("mfpa_net_flushes_total", {});
  m.misrouted = &reg.counter("mfpa_net_misrouted_records_total", {});
  return m;
}

void count_handshake(const char* result) {
  obs::registry()
      .counter("mfpa_net_handshakes_total", {{"result", result}})
      .inc();
}

}  // namespace

FlushAck RouterSink::flush_totals() {
  router_->flush();
  const RouterStats stats = router_->stats();
  FlushAck ack;
  ack.records_processed = stats.records_processed;
  ack.alerts = stats.alerts;
  ack.shed = stats.records_shed;
  return ack;
}

Hello RouterSink::identity() const {
  Hello id;
  // A single-shard slice asserts its global shard index; a router fronting
  // several shards answers for "any shard" of the topology.
  id.shard_index = router_->shard_count() == 1
                       ? static_cast<std::uint32_t>(router_->first_shard())
                       : kAnyShard;
  id.shard_count = static_cast<std::uint32_t>(router_->topology_shards());
  id.model_version = model_version_;
  return id;
}

struct IngestServer::Connection {
  int fd = -1;
  FrameDecoder decoder;
  std::string write_buf;
  std::size_t write_off = 0;
  bool hello_done = false;
  /// Close once write_buf drains — set when a kHelloAck must still reach a
  /// rejected client before the server hangs up.
  bool close_after_flush = false;

  bool write_pending() const noexcept { return write_off < write_buf.size(); }
};

IngestServer::IngestServer(RecordSink& sink, ServerConfig config)
    : sink_(&sink), config_(config) {
  start();
}

IngestServer::IngestServer(ShardRouter& router, ServerConfig config)
    : owned_sink_(std::make_unique<RouterSink>(router)), config_(config) {
  sink_ = owned_sink_.get();
  start();
}

void IngestServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("IngestServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const std::string why = std::strerror(errno);
    close_fd(listen_fd_);
    throw std::runtime_error("IngestServer: cannot bind 127.0.0.1:" +
                             std::to_string(config_.port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    close_fd(listen_fd_);
    throw std::runtime_error("IngestServer: pipe() failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  io_thread_ = std::thread([this] { io_loop(); });
}

IngestServer::~IngestServer() {
  stop();
  close_fd(listen_fd_);
  close_fd(wake_read_fd_);
  close_fd(wake_write_fd_);
}

void IngestServer::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  // Async-signal-safe wakeup; the pipe is non-blocking and one byte is
  // enough — a full pipe already guarantees a pending wakeup.
  const char byte = 0;
  [[maybe_unused]] const auto rc = ::write(wake_write_fd_, &byte, 1);
}

void IngestServer::stop() {
  request_stop();
  if (io_thread_.joinable()) io_thread_.join();
}

void IngestServer::count_protocol_error(DecodeError error) {
  obs::registry()
      .counter("mfpa_net_protocol_errors_total",
               {{"kind", error_name(error)}})
      .inc();
}

bool IngestServer::handle_hello(Connection& conn, const NetMessage& msg) {
  // Always answer with this server's identity, even on rejection — the
  // ack is what lets the client print exactly which field disagreed. The
  // rejected connection closes only after the ack drains.
  append_hello_frame(conn.write_buf, msg.seq, MessageType::kHelloAck,
                     sink_->identity());
  const char* why = msg.hello.mismatch(sink_->identity());
  if (why != nullptr) {
    count_handshake(why);
    conn.close_after_flush = true;
    return false;
  }
  count_handshake("ok");
  conn.hello_done = true;
  return true;
}

bool IngestServer::drain_connection(Connection& conn) {
  auto& metrics = server_metrics();
  NetMessage msg;
  for (;;) {
    const FrameDecoder::Status status = conn.decoder.next(msg);
    if (status == FrameDecoder::Status::kNeedMore) return true;
    if (status == FrameDecoder::Status::kError) {
      count_protocol_error(conn.decoder.error());
      return false;
    }
    if (config_.require_hello && !conn.hello_done &&
        msg.type != MessageType::kHello &&
        msg.type != MessageType::kGoodbye) {
      // A shard process never applies traffic from a client that did not
      // introduce itself — a legacy or misdirected feed must fail before
      // it can touch this shard's durable state.
      count_handshake("missing");
      return false;
    }
    switch (msg.type) {
      case MessageType::kHello:
        if (!handle_hello(conn, msg)) return false;
        break;
      case MessageType::kRecord: {
        if (!sink_->owns(msg.drive_id)) {
          // Digest-valid frame for a drive outside this slice: the client's
          // topology map is wrong. Refuse before any state is touched.
          metrics.misrouted->inc();
          return false;
        }
        serve::TelemetryUpdate update;
        update.drive_id = msg.drive_id;
        update.vendor = msg.vendor;
        update.record = msg.record;
        // Blocks when the owning shard's queue is full — the I/O thread
        // pausing here is exactly what closes the sender's TCP window.
        sink_->submit(update);
        metrics.records->inc();
        break;
      }
      case MessageType::kFlush: {
        obs::ScopedSpan span("net.flush");
        append_flush_ack_frame(conn.write_buf, msg.seq, sink_->flush_totals());
        metrics.flushes->inc();
        break;
      }
      case MessageType::kGoodbye:
        return false;  // orderly close, no error accounting
      case MessageType::kFlushAck:
      case MessageType::kHelloAck:
        // Client-only messages; a server receiving one is protocol misuse.
        count_protocol_error(DecodeError::kBadMessage);
        return false;
    }
  }
}

void IngestServer::io_loop() {
  auto& metrics = server_metrics();
  std::vector<std::unique_ptr<Connection>> conns;
  std::vector<char> chunk(config_.read_chunk);
  std::vector<pollfd> fds;

  auto close_conn = [&](std::size_t i) {
    close_fd(conns[i]->fd);
    metrics.active->add(-1.0);
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
  };

  // Sends as much of conn.write_buf as the socket accepts, retrying EINTR.
  // Returns false on a hard send error.
  auto pump_writes = [](Connection& conn) {
    while (conn.write_pending()) {
      const ssize_t n =
          ::send(conn.fd, conn.write_buf.data() + conn.write_off,
                 conn.write_buf.size() - conn.write_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      conn.write_off += static_cast<std::size_t>(n);
    }
    conn.write_buf.clear();
    conn.write_off = 0;
    return true;
  };

  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& conn : conns) {
      // A draining-close connection only waits for its ack to flush; new
      // input from the rejected client is ignored.
      short events = conn->close_after_flush ? 0 : POLLIN;
      if (conn->write_pending()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      for (;;) {
        char buf[64];
        const ssize_t n = ::read(wake_read_fd_, buf, sizeof(buf));
        if (n > 0) continue;
        if (n < 0 && errno == EINTR) continue;
        break;
      }
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;

    // Connections accepted below are appended after `polled`, so the
    // fds[2 + i] pairing with this poll round stays valid.
    const std::size_t polled = conns.size();
    if (fds[1].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          break;
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conns.push_back(std::move(conn));
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        metrics.connections->inc();
        metrics.active->add(1.0);
      }
    }

    // Iterate backwards so close_conn's erase leaves earlier indices valid.
    for (std::size_t i = polled; i-- > 0;) {
      Connection& conn = *conns[i];
      const pollfd& pfd = fds[2 + i];
      bool alive = true;

      if (pfd.revents & (POLLOUT | POLLHUP | POLLERR)) {
        alive = pump_writes(conn);
      }

      if (alive && !conn.close_after_flush &&
          (pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
        for (;;) {
          const ssize_t n = ::read(conn.fd, chunk.data(), chunk.size());
          if (n > 0) {
            metrics.bytes_received->inc(static_cast<std::uint64_t>(n));
            conn.decoder.feed(chunk.data(), static_cast<std::size_t>(n));
            if (!drain_connection(conn)) {
              alive = false;
              break;
            }
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          alive = false;  // EOF or hard error
          break;
        }
      }

      if ((alive || conn.close_after_flush) && conn.write_pending()) {
        // Opportunistic write so single-poll request/response (flush → ack,
        // hello → ack) doesn't need a second poll round trip — and so a
        // rejection ack reaches the client before the close below.
        if (!pump_writes(conn)) alive = false;
      }
      if (conn.close_after_flush && !conn.write_pending()) alive = false;

      if (!alive && !(conn.close_after_flush && conn.write_pending())) {
        close_conn(i);
      }
    }
  }

  // Graceful drain: no new bytes are read, but frames already buffered in
  // each decoder are finished before the connections close.
  for (std::size_t i = conns.size(); i-- > 0;) {
    drain_connection(*conns[i]);
    close_conn(i);
  }
  close_fd(listen_fd_);
}

}  // namespace mfpa::net
