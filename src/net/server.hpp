// Loopback TCP ingestion server for the sharded scoring service.
//
// One poll(2)-driven I/O thread owns every connection: it accepts, reads
// into per-connection buffers, runs each connection's FrameDecoder, and
// hands decoded kRecord messages to the ShardRouter. Router submission
// happens on the I/O thread on purpose — when a shard's queue is full,
// submit() blocks, the I/O thread stops reading, kernel socket buffers
// fill, and the sender's TCP window closes. The engines' bounded queues
// therefore *are* the ingestion tier's backpressure: total in-flight bytes
// are bounded by (shard queues) + (kernel socket buffers) + (one partial
// frame per connection), with no unbounded user-space queue anywhere.
//
// Protocol errors (bad magic, oversized length, digest mismatch, malformed
// body) latch the connection's decoder, bump
// mfpa_net_protocol_errors_total{kind=...}, and close that connection —
// other connections and the engines are unaffected.
//
// Shutdown is graceful by design: stop() (or the process's SIGTERM handler
// calling request_stop()) wakes the poll loop via a self-pipe, the loop
// stops accepting, closes idle connections, finishes decoding what was
// already buffered, and returns; the router then drains and seals durable
// state in its own stop(). Binds 127.0.0.1 only — this is the in-process /
// CI harness transport, not an exposed service.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/shard_router.hpp"

namespace mfpa::net {

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (tests, the
  /// loopback replay) — read the actual one from IngestServer::port().
  std::uint16_t port = 0;
  /// Listen backlog.
  int backlog = 16;
  /// Per-read chunk size.
  std::size_t read_chunk = 64 * 1024;
};

class IngestServer {
 public:
  /// Binds and starts the I/O thread. The router must outlive the server.
  /// Throws std::runtime_error when the socket cannot be bound.
  IngestServer(ShardRouter& router, ServerConfig config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Actual bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Async shutdown request — safe from a signal handler's thread context
  /// (writes one byte to the self-pipe). The poll loop finishes buffered
  /// frames and exits; join with stop().
  void request_stop() noexcept;

  /// Graceful shutdown: request_stop() + join the I/O thread. Idempotent.
  /// Does not stop the router — the owner decides when to drain it.
  void stop();

  /// Connections ever accepted (tests).
  std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  ShardRouter* router_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::thread io_thread_;

  void io_loop();
  /// Decodes and dispatches everything buffered on one connection.
  /// Returns false when the connection must close (error or goodbye).
  bool drain_connection(Connection& conn);
  void count_protocol_error(DecodeError error);
};

}  // namespace mfpa::net
