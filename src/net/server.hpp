// Loopback TCP ingestion server for the sharded scoring service.
//
// One poll(2)-driven I/O thread owns every connection: it accepts, reads
// into per-connection buffers, runs each connection's FrameDecoder, and
// hands decoded kRecord messages to a RecordSink — a ShardRouter in the
// scoring processes, a ForwardingSink in the router process. Sink
// submission happens on the I/O thread on purpose — when a shard's queue is
// full, submit() blocks, the I/O thread stops reading, kernel socket
// buffers fill, and the sender's TCP window closes. The engines' bounded
// queues therefore *are* the ingestion tier's backpressure: total in-flight
// bytes are bounded by (shard queues) + (kernel socket buffers) + (one
// partial frame per connection), with no unbounded user-space queue
// anywhere.
//
// Handshake: a kHello carries the client's claimed (shard index, shard
// count, model version); the server validates the claims against its own
// identity, always replies kHelloAck with that identity, and on a mismatch
// flushes the ack and closes — so a misrouted or topology-stale client
// fails fast instead of feeding the wrong shard's state. With
// `require_hello` (the per-shard server processes), any other message
// before a successful handshake also closes the connection. Results are
// counted in mfpa_net_handshakes_total{result=...}; a digest-valid kRecord
// for a drive outside the sink's owned slice bumps
// mfpa_net_misrouted_records_total and closes the connection before any
// state is touched.
//
// Protocol errors (bad magic, oversized length, digest mismatch, malformed
// body) latch the connection's decoder, bump
// mfpa_net_protocol_errors_total{kind=...}, and close that connection —
// other connections and the engines are unaffected.
//
// Shutdown is graceful by design: stop() (or the process's SIGTERM handler
// calling request_stop()) wakes the poll loop via a self-pipe, the loop
// stops accepting, closes idle connections, finishes decoding what was
// already buffered, and returns; the router then drains and seals durable
// state in its own stop(). Binds 127.0.0.1 only — this is the in-process /
// CI harness transport, not an exposed service.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/shard_router.hpp"

namespace mfpa::net {

/// Where decoded records go. Implemented by the in-process ShardRouter
/// (RouterSink) and by the router process's client-fan-out (ForwardingSink,
/// net/forwarding_sink.hpp).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  /// Delivers one record; may block (backpressure). Returns false only when
  /// the record was shed.
  virtual bool submit(const serve::TelemetryUpdate& update) = 0;
  /// Barrier: drains everything submitted so far and returns the totals for
  /// the kFlushAck reply.
  virtual FlushAck flush_totals() = 0;
  /// Whether this sink's slice of the topology owns the drive. A record for
  /// a drive outside the slice is a misroute and never reaches submit().
  virtual bool owns(std::uint64_t /*drive_id*/) const { return true; }
  /// The identity this server asserts in kHelloAck replies.
  virtual Hello identity() const = 0;
};

/// RecordSink over an in-process ShardRouter (full topology or a
/// single-process slice of one).
class RouterSink : public RecordSink {
 public:
  /// `model_version` is stamped into the handshake identity (0 = wildcard:
  /// version checks are skipped).
  explicit RouterSink(ShardRouter& router, std::uint32_t model_version = 0)
      : router_(&router), model_version_(model_version) {}

  bool submit(const serve::TelemetryUpdate& update) override {
    return router_->submit(update);
  }
  FlushAck flush_totals() override;
  bool owns(std::uint64_t drive_id) const override {
    return router_->owns(drive_id);
  }
  Hello identity() const override;

 private:
  ShardRouter* router_;
  std::uint32_t model_version_;
};

struct ServerConfig {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (tests, the
  /// loopback replay) — read the actual one from IngestServer::port().
  std::uint16_t port = 0;
  /// Listen backlog.
  int backlog = 16;
  /// Per-read chunk size.
  std::size_t read_chunk = 64 * 1024;
  /// When true, every connection must open with a compatible kHello before
  /// any other message (the per-shard server processes; misdirected legacy
  /// clients must not feed a shard's state). When false, a kHello is still
  /// validated when sent, but is not required (the in-process loopback
  /// transport and its tests).
  bool require_hello = false;
};

class IngestServer {
 public:
  /// Binds and starts the I/O thread. The sink (and, for the convenience
  /// overload, the router) must outlive the server. Throws
  /// std::runtime_error when the socket cannot be bound.
  IngestServer(RecordSink& sink, ServerConfig config);
  /// Convenience: serves an in-process router under a wildcard handshake
  /// identity (the single-process loopback path).
  IngestServer(ShardRouter& router, ServerConfig config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Actual bound port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Async shutdown request — safe from a signal handler's thread context
  /// (writes one byte to the self-pipe). The poll loop finishes buffered
  /// frames and exits; join with stop().
  void request_stop() noexcept;

  /// Graceful shutdown: request_stop() + join the I/O thread. Idempotent.
  /// Does not stop the router — the owner decides when to drain it.
  void stop();

  /// Connections ever accepted (tests).
  std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  RecordSink* sink_;
  std::unique_ptr<RouterSink> owned_sink_;  ///< backs the router overload
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::thread io_thread_;

  void start();
  void io_loop();
  /// Decodes and dispatches everything buffered on one connection.
  /// Returns false when the connection must close (error or goodbye).
  bool drain_connection(Connection& conn);
  bool handle_hello(Connection& conn, const NetMessage& msg);
  void count_protocol_error(DecodeError error);
};

}  // namespace mfpa::net
