// Binary ingestion protocol for the sharded scoring service.
//
// The wire format applies the tree's FNV-1a framing conventions (the
// ml/serialize v2 artifact framing and the serve/wal segment frames) to a
// TCP byte stream:
//
//   u32 magic   "MFNP"            marks a frame boundary
//   u32 size    payload bytes
//   u64 seq     sender-assigned sequence number (1-based, diagnostics)
//   u8  payload[size]             first byte = message type
//   u64 digest  FNV-1a 64 over (size, seq, payload)
//
// Message types:
//   kRecord    one drive's daily telemetry upload; body is the exact
//              serve/wal record payload (encode_wal_payload), so the wire
//              and the durable log share one record serialization.
//   kFlush     barrier: the client asks the server to drain everything
//              received so far and reply with kFlushAck.
//   kFlushAck  server -> client; body: u64 records processed, u64 alerts
//              raised, u64 records shed (shed_on_full deployments).
//   kGoodbye   orderly end-of-stream; the server drops the connection
//              without counting an error.
//   kHello     handshake opener (client -> server): the shard index the
//              client believes this endpoint serves, the shard count it
//              assumes, and the model version it expects to score under.
//              Wildcard fields (kAnyShard / 0) skip that check. The server
//              validates the claims against its own identity and always
//              replies kHelloAck; on a mismatch it closes the connection
//              after the ack, so a misrouted or topology-stale client
//              fails fast instead of feeding the wrong shard's state.
//   kHelloAck  server -> client; body mirrors kHello with the *server's*
//              identity, letting the client print exactly which field
//              disagreed.
//
// Unlike the WAL's file scan there is no resync: TCP already guarantees
// ordered delivery, so any framing violation (bad magic, oversized length,
// digest mismatch, malformed message body) means the stream itself is
// corrupt or hostile — the decoder latches the error and the server closes
// the connection with per-kind error accounting (mfpa_net_protocol_errors).
// An oversized length field is rejected from the 16-byte header alone,
// before any buffer grows toward the claimed size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/telemetry.hpp"

namespace mfpa::net {

inline constexpr std::uint32_t kNetFrameMagic = 0x504E464DU;  // "MFNP"

/// Frame overhead: magic + size + seq header, trailing digest.
inline constexpr std::size_t kNetFrameHeaderBytes = 4 + 4 + 8;
inline constexpr std::size_t kNetFrameDigestBytes = 8;

/// Hard payload bound. A record payload is ~150 bytes and control bodies
/// are smaller still; anything claiming more is a corrupt or hostile
/// length field and is rejected from the header alone.
inline constexpr std::uint32_t kMaxNetPayload = 1u << 16;

enum class MessageType : std::uint8_t {
  kRecord = 1,
  kFlush = 2,
  kFlushAck = 3,
  kGoodbye = 4,
  kHello = 5,
  kHelloAck = 6,
};

/// kFlushAck body.
struct FlushAck {
  std::uint64_t records_processed = 0;
  std::uint64_t alerts = 0;
  std::uint64_t shed = 0;
};

/// Wildcard shard index in a kHello/kHelloAck: "any shard" — sent by
/// shard-oblivious clients and by router-mode servers that front the whole
/// topology. Model version 0 and shard count 0 are the analogous wildcards.
inline constexpr std::uint32_t kAnyShard = 0xFFFFFFFFU;

/// kHello / kHelloAck body: one side's claimed (or actual) place in the
/// sharded topology. A field check is skipped when either side sent its
/// wildcard value.
struct Hello {
  std::uint32_t shard_index = kAnyShard;
  std::uint32_t shard_count = 0;
  std::uint32_t model_version = 0;

  /// First field on which `server`'s identity contradicts this
  /// expectation, or nullptr when the handshake is compatible. The
  /// returned literal doubles as the mfpa_net_handshakes_total{result=}
  /// label ("shard_mismatch" / "topology_mismatch" / "version_mismatch").
  const char* mismatch(const Hello& server) const noexcept;
};

/// One decoded message (fields beyond `type`/`seq` are valid per type).
struct NetMessage {
  MessageType type = MessageType::kGoodbye;
  std::uint64_t seq = 0;
  std::uint64_t drive_id = 0;       ///< kRecord
  int vendor = 0;                   ///< kRecord
  sim::DailyRecord record;          ///< kRecord
  FlushAck ack;                     ///< kFlushAck
  Hello hello;                      ///< kHello / kHelloAck
};

// --- encoding --------------------------------------------------------------

/// Appends one kRecord frame carrying a telemetry upload.
void append_record_frame(std::string& buf, std::uint64_t seq,
                         std::uint64_t drive_id, int vendor,
                         const sim::DailyRecord& record);

/// Appends one bodyless control frame (kFlush / kGoodbye).
void append_control_frame(std::string& buf, std::uint64_t seq,
                          MessageType type);

/// Appends one kFlushAck frame.
void append_flush_ack_frame(std::string& buf, std::uint64_t seq,
                            const FlushAck& ack);

/// Appends one kHello or kHelloAck frame (`type` selects which).
void append_hello_frame(std::string& buf, std::uint64_t seq, MessageType type,
                        const Hello& hello);

// --- decoding --------------------------------------------------------------

/// Why a stream was declared dead. Values are stable metric-label names
/// (mfpa_net_protocol_errors_total{kind=...}); see error_name().
enum class DecodeError {
  kNone = 0,
  kBadMagic,     ///< frame boundary does not start with "MFNP"
  kOversized,    ///< length field exceeds kMaxNetPayload (checked pre-buffer)
  kBadDigest,    ///< checksum mismatch (bit flip in header or payload)
  kBadMessage,   ///< digest-valid frame with a malformed message body
};

const char* error_name(DecodeError error) noexcept;

/// Incremental frame decoder over one connection's byte stream. feed()
/// appends received bytes; next() yields complete messages until it either
/// needs more bytes or latches a DecodeError (after which the stream is
/// unusable and every next() returns kError).
class FrameDecoder {
 public:
  enum class Status { kMessage, kNeedMore, kError };

  explicit FrameDecoder(std::size_t max_payload = kMaxNetPayload)
      : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t n);

  /// Decodes the next complete frame into `out`.
  Status next(NetMessage& out);

  DecodeError error() const noexcept { return error_; }
  std::size_t buffered_bytes() const noexcept { return buf_.size() - off_; }

 private:
  std::string buf_;
  std::size_t off_ = 0;  ///< consumed prefix (compacted as it grows)
  std::size_t max_payload_;
  DecodeError error_ = DecodeError::kNone;
};

}  // namespace mfpa::net
