#include "net/protocol.hpp"

#include <stdexcept>
#include <string_view>

#include "common/wire.hpp"
#include "ml/checksum.hpp"
#include "serve/wal.hpp"

namespace mfpa::net {
namespace {

/// Frames `payload` under `seq` with the shared digest-over-(size, seq,
/// payload) layout. The digest region starts at the size field, exactly
/// like a WAL frame — only the magic differs.
void append_net_frame(std::string& buf, std::uint64_t seq,
                      std::string_view payload) {
  const std::size_t body_start = buf.size() + 4;
  wire::put_u32(buf, kNetFrameMagic);
  wire::put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  wire::put_u64(buf, seq);
  buf.append(payload);
  const std::uint64_t digest = ml::fnv1a(
      std::string_view(buf.data() + body_start, buf.size() - body_start));
  wire::put_u64(buf, digest);
}

}  // namespace

void append_record_frame(std::string& buf, std::uint64_t seq,
                         std::uint64_t drive_id, int vendor,
                         const sim::DailyRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(MessageType::kRecord));
  payload += serve::encode_wal_payload(drive_id, vendor, record);
  append_net_frame(buf, seq, payload);
}

void append_control_frame(std::string& buf, std::uint64_t seq,
                          MessageType type) {
  const char payload[1] = {static_cast<char>(type)};
  append_net_frame(buf, seq, std::string_view(payload, 1));
}

void append_flush_ack_frame(std::string& buf, std::uint64_t seq,
                            const FlushAck& ack) {
  std::string payload;
  payload.push_back(static_cast<char>(MessageType::kFlushAck));
  wire::put_u64(payload, ack.records_processed);
  wire::put_u64(payload, ack.alerts);
  wire::put_u64(payload, ack.shed);
  append_net_frame(buf, seq, payload);
}

void append_hello_frame(std::string& buf, std::uint64_t seq, MessageType type,
                        const Hello& hello) {
  if (type != MessageType::kHello && type != MessageType::kHelloAck) {
    throw std::invalid_argument(
        "append_hello_frame: type must be kHello or kHelloAck");
  }
  std::string payload;
  payload.push_back(static_cast<char>(type));
  wire::put_u32(payload, hello.shard_index);
  wire::put_u32(payload, hello.shard_count);
  wire::put_u32(payload, hello.model_version);
  append_net_frame(buf, seq, payload);
}

const char* Hello::mismatch(const Hello& server) const noexcept {
  if (shard_index != kAnyShard && server.shard_index != kAnyShard &&
      shard_index != server.shard_index) {
    return "shard_mismatch";
  }
  if (shard_count != 0 && server.shard_count != 0 &&
      shard_count != server.shard_count) {
    return "topology_mismatch";
  }
  if (model_version != 0 && server.model_version != 0 &&
      model_version != server.model_version) {
    return "version_mismatch";
  }
  return nullptr;
}

const char* error_name(DecodeError error) noexcept {
  switch (error) {
    case DecodeError::kNone: return "none";
    case DecodeError::kBadMagic: return "bad_magic";
    case DecodeError::kOversized: return "oversized";
    case DecodeError::kBadDigest: return "bad_digest";
    case DecodeError::kBadMessage: return "bad_message";
  }
  return "unknown";
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  // Compact the consumed prefix before growing; keeps the buffer bounded
  // by (one partial frame + one read chunk) regardless of stream length.
  if (off_ > 0 && off_ == buf_.size()) {
    buf_.clear();
    off_ = 0;
  } else if (off_ >= 4096) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Status FrameDecoder::next(NetMessage& out) {
  if (error_ != DecodeError::kNone) return Status::kError;
  const std::size_t avail = buf_.size() - off_;
  if (avail < kNetFrameHeaderBytes) return Status::kNeedMore;
  if (wire::read_u32_at(buf_.data(), off_) != kNetFrameMagic) {
    error_ = DecodeError::kBadMagic;
    return Status::kError;
  }
  const std::uint32_t size = wire::read_u32_at(buf_.data(), off_ + 4);
  // The length field is validated from the header alone: a hostile or
  // corrupt size never causes a proportional allocation — the buffer only
  // ever holds bytes the peer actually sent.
  if (size > max_payload_) {
    error_ = DecodeError::kOversized;
    return Status::kError;
  }
  const std::size_t total = kNetFrameHeaderBytes + size + kNetFrameDigestBytes;
  if (avail < total) return Status::kNeedMore;
  const std::uint64_t want =
      wire::read_u64_at(buf_.data(), off_ + kNetFrameHeaderBytes + size);
  const std::uint64_t got = ml::fnv1a(
      std::string_view(buf_.data() + off_ + 4, 4 + 8 + size));
  if (want != got) {
    error_ = DecodeError::kBadDigest;
    return Status::kError;
  }
  const std::uint64_t seq = wire::read_u64_at(buf_.data(), off_ + 8);
  const std::string payload = buf_.substr(off_ + kNetFrameHeaderBytes, size);
  off_ += total;

  if (payload.empty()) {
    error_ = DecodeError::kBadMessage;
    return Status::kError;
  }
  out = NetMessage{};
  out.seq = seq;
  const auto type = static_cast<MessageType>(
      static_cast<std::uint8_t>(payload[0]));
  const std::string body = payload.substr(1);
  try {
    switch (type) {
      case MessageType::kRecord: {
        const serve::WalEntry entry = serve::decode_wal_payload(seq, body);
        out.type = MessageType::kRecord;
        out.drive_id = entry.drive_id;
        out.vendor = entry.vendor;
        out.record = entry.record;
        return Status::kMessage;
      }
      case MessageType::kFlush:
      case MessageType::kGoodbye: {
        if (!body.empty()) break;
        out.type = type;
        return Status::kMessage;
      }
      case MessageType::kFlushAck: {
        wire::ByteReader r(body, "net flush-ack");
        out.type = MessageType::kFlushAck;
        out.ack.records_processed = r.u64();
        out.ack.alerts = r.u64();
        out.ack.shed = r.u64();
        r.expect_done();
        return Status::kMessage;
      }
      case MessageType::kHello:
      case MessageType::kHelloAck: {
        wire::ByteReader r(body, "net hello");
        out.type = type;
        out.hello.shard_index = r.u32();
        out.hello.shard_count = r.u32();
        out.hello.model_version = r.u32();
        r.expect_done();
        return Status::kMessage;
      }
    }
  } catch (const std::runtime_error&) {
    // Fall through: short/overlong body under a valid digest.
  }
  error_ = DecodeError::kBadMessage;
  return Status::kError;
}

}  // namespace mfpa::net
