// Shard-aware fan-out client: one TelemetryClient per shard endpoint, with
// records routed locally by the same Fibonacci drive-id hash
// (serve::drive_shard) the servers shard by. This drops the router hop — a
// record travels client → owning shard directly, instead of client →
// router → shard — at the cost of the client knowing the topology. That
// knowledge is verified, not assumed: every connection opens with a kHello
// claiming (shard index, topology size, expected model version), so a
// stale port map, a resharded fleet, or a mid-rollout model skew fails at
// connect time with the disagreeing field named, rather than as silent
// misrouted state. The per-shard servers enforce the same contract from
// their side (require_hello + per-record owns() checks).
//
// sync() barriers every shard and sums the per-shard FlushAck totals; with
// each drive owned by exactly one shard the sums are exact fleet totals.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/client.hpp"
#include "net/protocol.hpp"

namespace mfpa::net {

struct ShardedClientConfig {
  /// Per-shard server ports, indexed by GLOBAL shard index; size() is the
  /// topology's shard count.
  std::vector<std::uint16_t> ports;
  /// Model version every shard must be serving (0 skips the check).
  std::uint32_t model_version = 0;
  /// When false, connections claim the wildcard identity instead of
  /// (index, ports.size()) — for feeding through a forwarding router
  /// endpoint, where the connection count is not the fleet topology and a
  /// concrete claim would be a lie the handshake rightly rejects.
  bool claim_topology = true;
  /// Per-connection send-buffer bytes.
  std::size_t send_buffer = 256 * 1024;
};

class ShardedClient {
 public:
  /// Connects and handshakes every shard. Throws std::runtime_error when a
  /// connection fails or any shard's kHelloAck contradicts the claimed
  /// (index, topology, model version).
  explicit ShardedClient(ShardedClientConfig config);

  ShardedClient(const ShardedClient&) = delete;
  ShardedClient& operator=(const ShardedClient&) = delete;

  std::size_t shard_count() const noexcept { return clients_.size(); }

  /// Routes one record to its owning shard's connection.
  void send_record(std::uint64_t drive_id, int vendor,
                   const sim::DailyRecord& record);

  /// Flushes every shard's send buffer without a barrier.
  void flush_buffers();

  /// Barrier across the fleet: kFlush to every shard, per-shard acks summed
  /// into fleet totals.
  FlushAck sync();

  /// Orderly kGoodbye + close on every shard. Idempotent.
  void close();

  std::uint64_t records_sent() const noexcept { return records_sent_; }

 private:
  std::vector<std::unique_ptr<TelemetryClient>> clients_;
  std::uint64_t records_sent_ = 0;
};

}  // namespace mfpa::net
