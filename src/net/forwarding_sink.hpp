// RecordSink that forwards to the per-shard server processes through a
// ShardedClient — the router-process mode (`mfpa shard-route`). A
// shard-oblivious client connects to one router endpoint exactly as it
// would a single-process server; the router re-frames each record onto the
// owning shard's connection. This buys topology transparency for one extra
// hop; shard-aware clients (ShardedClient) skip the hop entirely.
//
// Only ever called from the fronting IngestServer's single I/O thread, so
// the underlying client needs no locking. Backpressure composes: a slow
// shard blocks the forwarding send, which pauses the router's I/O thread,
// which closes the upstream client's TCP window.
#pragma once

#include "net/server.hpp"
#include "net/sharded_client.hpp"

namespace mfpa::net {

class ForwardingSink : public RecordSink {
 public:
  /// The sharded client (already connected and handshaken) must outlive
  /// the sink.
  explicit ForwardingSink(ShardedClient& downstream)
      : downstream_(&downstream) {}

  bool submit(const serve::TelemetryUpdate& update) override {
    downstream_->send_record(update.drive_id, update.vendor, update.record);
    return true;
  }

  FlushAck flush_totals() override {
    downstream_->flush_buffers();
    return downstream_->sync();
  }

  // owns() stays the default "everything": the router fronts the whole
  // topology, that is its purpose.

  Hello identity() const override {
    Hello id;  // wildcard shard index — this endpoint answers for any shard
    id.shard_count = static_cast<std::uint32_t>(downstream_->shard_count());
    return id;
  }

 private:
  ShardedClient* downstream_;
};

}  // namespace mfpa::net
