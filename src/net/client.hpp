// Client-side encoder for the binary ingestion protocol: connects to an
// IngestServer over loopback, streams kRecord frames from a buffered,
// blocking socket, and offers a sync() barrier that round-trips a
// kFlush / kFlushAck pair. The blocking socket is the client half of the
// backpressure contract — when the server stops reading (shard queue
// full), send() blocks and the producer slows to the service's rate.
#pragma once

#include <cstdint>
#include <string>

#include "net/protocol.hpp"

namespace mfpa::net {

class TelemetryClient {
 public:
  /// Connects to 127.0.0.1:port (blocking socket). Throws
  /// std::runtime_error when the connection fails.
  explicit TelemetryClient(std::uint16_t port,
                           std::size_t send_buffer = 256 * 1024);
  ~TelemetryClient();

  TelemetryClient(const TelemetryClient&) = delete;
  TelemetryClient& operator=(const TelemetryClient&) = delete;

  /// Handshake: sends kHello with this client's claimed place in the
  /// topology and blocks for the server's kHelloAck. Throws
  /// std::runtime_error naming the disagreeing field when the server's
  /// identity contradicts `claim` — or when the server closed the
  /// connection, which is how a require_hello server refuses a claim it
  /// rejects. Returns the server's identity. Wildcard fields (kAnyShard /
  /// 0) skip their check; a default-constructed Hello only verifies the
  /// endpoint speaks the protocol.
  Hello handshake(const Hello& claim);

  /// Encodes one record frame into the send buffer (flushing the buffer to
  /// the socket whenever it exceeds the configured size).
  void send_record(std::uint64_t drive_id, int vendor,
                   const sim::DailyRecord& record);

  /// Flushes buffered frames to the socket without a barrier.
  void flush_buffer();

  /// Barrier: sends kFlush and blocks until the server's kFlushAck, which
  /// reports fleet-wide totals as of the barrier. Throws on connection
  /// loss or a malformed reply.
  FlushAck sync();

  /// Sends kGoodbye and closes the socket. Idempotent; the destructor
  /// closes without the goodbye if the caller never got here.
  void close();

  std::uint64_t records_sent() const noexcept { return records_sent_; }

 private:
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t records_sent_ = 0;
  std::size_t send_buffer_limit_;
  std::string send_buf_;
  FrameDecoder decoder_;

  void send_all(const char* data, std::size_t n);
  /// Blocks for one reply frame of type `want`; throws on anything else.
  NetMessage await_reply(MessageType want, const char* what);
};

}  // namespace mfpa::net
