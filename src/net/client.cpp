#include "net/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mfpa::net {

TelemetryClient::TelemetryClient(std::uint16_t port, std::size_t send_buffer)
    : send_buffer_limit_(send_buffer) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("TelemetryClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("TelemetryClient: cannot connect 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TelemetryClient::~TelemetryClient() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TelemetryClient::send_all(const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("TelemetryClient: send failed: ") +
                               std::strerror(errno));
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

void TelemetryClient::send_record(std::uint64_t drive_id, int vendor,
                                  const sim::DailyRecord& record) {
  if (fd_ < 0) throw std::runtime_error("TelemetryClient: closed");
  append_record_frame(send_buf_, next_seq_++, drive_id, vendor, record);
  ++records_sent_;
  if (send_buf_.size() >= send_buffer_limit_) flush_buffer();
}

void TelemetryClient::flush_buffer() {
  if (send_buf_.empty()) return;
  send_all(send_buf_.data(), send_buf_.size());
  send_buf_.clear();
}

FlushAck TelemetryClient::sync() {
  if (fd_ < 0) throw std::runtime_error("TelemetryClient: closed");
  append_control_frame(send_buf_, next_seq_++, MessageType::kFlush);
  flush_buffer();
  NetMessage msg;
  char chunk[4096];
  for (;;) {
    switch (decoder_.next(msg)) {
      case FrameDecoder::Status::kMessage:
        if (msg.type != MessageType::kFlushAck) {
          throw std::runtime_error(
              "TelemetryClient: unexpected reply message");
        }
        return msg.ack;
      case FrameDecoder::Status::kError:
        throw std::runtime_error(
            std::string("TelemetryClient: corrupt reply: ") +
            error_name(decoder_.error()));
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      throw std::runtime_error(
          "TelemetryClient: connection closed awaiting flush ack");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("TelemetryClient: recv failed: ") +
                               std::strerror(errno));
    }
    decoder_.feed(chunk, static_cast<std::size_t>(n));
  }
}

void TelemetryClient::close() {
  if (fd_ < 0) return;
  append_control_frame(send_buf_, next_seq_++, MessageType::kGoodbye);
  flush_buffer();
  ::close(fd_);
  fd_ = -1;
}

}  // namespace mfpa::net
