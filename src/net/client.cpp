#include "net/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace mfpa::net {
namespace {

/// connect(2) with EINTR handling: an interrupted connect keeps completing
/// in the background, so retrying the call races against it — instead poll
/// for writability and read the outcome from SO_ERROR.
int connect_retry(int fd, const sockaddr* addr, socklen_t len) {
  if (::connect(fd, addr, len) == 0) return 0;
  if (errno != EINTR) return -1;
  for (;;) {
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) return -1;
    if (err != 0) {
      errno = err;
      return -1;
    }
    return 0;
  }
}

}  // namespace

TelemetryClient::TelemetryClient(std::uint16_t port, std::size_t send_buffer)
    : send_buffer_limit_(send_buffer) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("TelemetryClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect_retry(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("TelemetryClient: cannot connect 127.0.0.1:" +
                             std::to_string(port) + ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TelemetryClient::~TelemetryClient() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TelemetryClient::send_all(const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("TelemetryClient: send failed: ") +
                               std::strerror(errno));
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

void TelemetryClient::send_record(std::uint64_t drive_id, int vendor,
                                  const sim::DailyRecord& record) {
  if (fd_ < 0) throw std::runtime_error("TelemetryClient: closed");
  append_record_frame(send_buf_, next_seq_++, drive_id, vendor, record);
  ++records_sent_;
  if (send_buf_.size() >= send_buffer_limit_) flush_buffer();
}

void TelemetryClient::flush_buffer() {
  if (send_buf_.empty()) return;
  send_all(send_buf_.data(), send_buf_.size());
  send_buf_.clear();
}

NetMessage TelemetryClient::await_reply(MessageType want, const char* what) {
  NetMessage msg;
  char chunk[4096];
  for (;;) {
    switch (decoder_.next(msg)) {
      case FrameDecoder::Status::kMessage:
        if (msg.type != want) {
          throw std::runtime_error(
              "TelemetryClient: unexpected reply message");
        }
        return msg;
      case FrameDecoder::Status::kError:
        throw std::runtime_error(
            std::string("TelemetryClient: corrupt reply: ") +
            error_name(decoder_.error()));
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      throw std::runtime_error(std::string("TelemetryClient: connection "
                                           "closed awaiting ") +
                               what);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("TelemetryClient: recv failed: ") +
                               std::strerror(errno));
    }
    decoder_.feed(chunk, static_cast<std::size_t>(n));
  }
}

Hello TelemetryClient::handshake(const Hello& claim) {
  if (fd_ < 0) throw std::runtime_error("TelemetryClient: closed");
  append_hello_frame(send_buf_, next_seq_++, MessageType::kHello, claim);
  flush_buffer();
  const NetMessage msg = await_reply(MessageType::kHelloAck, "hello ack");
  if (const char* why = claim.mismatch(msg.hello)) {
    throw std::runtime_error(
        std::string("TelemetryClient: handshake rejected (") + why +
        "): server is shard " + std::to_string(msg.hello.shard_index) + "/" +
        std::to_string(msg.hello.shard_count) + " model v" +
        std::to_string(msg.hello.model_version) + ", client expected shard " +
        std::to_string(claim.shard_index) + "/" +
        std::to_string(claim.shard_count) + " model v" +
        std::to_string(claim.model_version));
  }
  return msg.hello;
}

FlushAck TelemetryClient::sync() {
  if (fd_ < 0) throw std::runtime_error("TelemetryClient: closed");
  append_control_frame(send_buf_, next_seq_++, MessageType::kFlush);
  flush_buffer();
  return await_reply(MessageType::kFlushAck, "flush ack").ack;
}

void TelemetryClient::close() {
  if (fd_ < 0) return;
  append_control_frame(send_buf_, next_seq_++, MessageType::kGoodbye);
  flush_buffer();
  ::close(fd_);
  fd_ = -1;
}

}  // namespace mfpa::net
