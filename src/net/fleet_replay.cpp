#include "net/fleet_replay.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "serve/drive_state_store.hpp"

namespace mfpa::net {
namespace {

using serve::FleetReplayer;

/// Merges `src` into `dst` bin-by-bin. Every shard engine is built from one
/// EngineConfig template, so the histograms share (lo, hi, bins) and the
/// merge is exact to one bin width (midpoints re-land in the same bin).
void merge_histogram(stats::Histogram& dst, const stats::Histogram& src) {
  for (std::size_t i = 0; i < src.bins(); ++i) {
    const std::size_t n = src.bin_count(i);
    if (n > 0) dst.add_count(0.5 * (src.bin_lo(i) + src.bin_hi(i)), n);
  }
}

/// Collapses per-shard engine stats into one fleet-wide EngineStats so the
/// sharded report prints/exports through the exact same code paths as the
/// single-engine one.
serve::EngineStats merge_engine_stats(const RouterStats& router) {
  serve::EngineStats merged;
  bool first = true;
  for (const auto& s : router.shards) {
    merged.submitted += s.submitted;
    merged.accepted += s.accepted;
    merged.shed += s.shed;
    merged.rejected += s.rejected;
    merged.unscored_no_model += s.unscored_no_model;
    merged.records_processed += s.records_processed;
    merged.rows_scored += s.rows_scored;
    merged.synthetic_rows += s.synthetic_rows;
    merged.batches += s.batches;
    merged.alerts += s.alerts;
    merged.model_swaps += s.model_swaps;
    merged.max_queue_depth = std::max(merged.max_queue_depth,
                                      s.max_queue_depth);
    if (first) {
      merged.batch_size = s.batch_size;
      merged.queue_depth = s.queue_depth;
      merged.latency_us = s.latency_us;
      first = false;
    } else {
      merge_histogram(merged.batch_size, s.batch_size);
      merge_histogram(merged.queue_depth, s.queue_depth);
      merge_histogram(merged.latency_us, s.latency_us);
    }
  }
  return merged;
}

serve::StoreStats merge_store_stats(const ShardRouter& router) {
  serve::StoreStats merged;
  for (std::size_t i = 0; i < router.shard_count(); ++i) {
    const serve::StoreStats s = router.shard(i).store().stats();
    merged.drives_tracked += s.drives_tracked;
    merged.drives_quarantined += s.drives_quarantined;
    merged.records_ingested += s.records_ingested;
    merged.rows_emitted += s.rows_emitted;
    merged.segments_restarted += s.segments_restarted;
    merged.ingest.merge(s.ingest);
  }
  return merged;
}

/// The shared feed loop: walks the deterministic arrival order, applies the
/// per-shard resume skips, and hands each live record to `deliver`.
void feed_arrivals(const ShardRouter& router, const FleetReplayer& replayer,
                   const ShardedReplayOptions& options,
                   serve::ReplayReport& report,
                   const std::function<void(const FleetReplayer::Arrival&)>&
                       deliver) {
  if (!options.skip_records.empty() &&
      options.skip_records.size() != router.shard_count()) {
    throw std::invalid_argument(
        "replay_sharded: skip_records size (" +
        std::to_string(options.skip_records.size()) +
        ") must match the shard count (" +
        std::to_string(router.shard_count()) + ")");
  }
  std::vector<std::size_t> to_skip = options.skip_records;
  to_skip.resize(router.shard_count(), 0);

  DayIndex current_day = replayer.first_day() - 1;
  for (const FleetReplayer::Arrival& arrival : replayer.arrivals()) {
    std::size_t& budget = to_skip[router.shard_of(arrival.drive_id)];
    if (budget > 0) {
      --budget;
      ++report.records_skipped;
      current_day = arrival.day;
      continue;
    }
    if (options.cancel != nullptr && *options.cancel) {
      report.interrupted = true;
      break;
    }
    if (arrival.day != current_day) {
      current_day = arrival.day;
      ++report.days_replayed;
      if (options.on_day) options.on_day(current_day);
    }
    deliver(arrival);
    ++report.records_submitted;
    if (options.kill_after_records > 0 &&
        report.records_submitted >= options.kill_after_records) {
      // Die exactly as a power cut would: no flush, no destructors.
      std::raise(SIGKILL);
    }
  }
}

/// Fills everything but the drive-level verdicts (callers own those — the
/// streamed replay no longer holds the telemetry by the time totals exist).
void finish_report(ShardedReplayReport& out, const ShardRouter& router,
                   std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  out.replay.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  out.router = router.stats();
  out.replay.engine = merge_engine_stats(out.router);
  out.replay.store = merge_store_stats(router);
  out.replay.alerts = router.alerts();
  out.replay.records_per_sec =
      out.replay.wall_seconds > 0.0
          ? static_cast<double>(out.replay.engine.submitted) /
                out.replay.wall_seconds
          : 0.0;
}

std::uint64_t protocol_error_total() {
  std::uint64_t total = 0;
  for (const auto& metric : obs::registry().snapshot().metrics) {
    if (metric.name == "mfpa_net_protocol_errors_total") {
      total += metric.counter;
    }
  }
  return total;
}

}  // namespace

ShardedReplayReport replay_sharded(ShardRouter& router,
                                   const FleetReplayer& replayer,
                                   const ShardedReplayOptions& options) {
  ShardedReplayReport out;
  const auto start = std::chrono::steady_clock::now();
  feed_arrivals(router, replayer, options, out.replay,
                [&](const FleetReplayer::Arrival& arrival) {
                  router.submit(
                      {arrival.drive_id, arrival.vendor, *arrival.record});
                });
  router.flush();
  finish_report(out, router, start);
  out.replay.drives =
      FleetReplayer::drive_level(out.replay.alerts, replayer.telemetry());
  return out;
}

ShardedReplayReport replay_over_loopback(ShardRouter& router,
                                         const FleetReplayer& replayer,
                                         const ShardedReplayOptions& options) {
  ShardedReplayReport out;
  const std::uint64_t errors_before = protocol_error_total();
  const auto start = std::chrono::steady_clock::now();
  IngestServer server(router, {});
  {
    TelemetryClient client(server.port());
    feed_arrivals(router, replayer, options, out.replay,
                  [&](const FleetReplayer::Arrival& arrival) {
                    client.send_record(arrival.drive_id, arrival.vendor,
                                       *arrival.record);
                  });
    client.sync();
    client.close();
  }
  server.stop();
  router.flush();
  finish_report(out, router, start);
  out.replay.drives =
      FleetReplayer::drive_level(out.replay.alerts, replayer.telemetry());
  out.protocol_errors = protocol_error_total() - errors_before;
  return out;
}

StreamedFleetReport replay_fleet_streamed(ShardRouter& router,
                                          sim::FleetSimulator& fleet,
                                          const StreamedFleetOptions& options) {
  if (options.chunk_drives == 0) {
    throw std::invalid_argument(
        "replay_fleet_streamed: chunk_drives must be >= 1");
  }
  if (!options.skip_records.empty() &&
      options.skip_records.size() != router.shard_count()) {
    throw std::invalid_argument(
        "replay_fleet_streamed: skip_records size must match the shard "
        "count");
  }
  StreamedFleetReport out;
  const std::uint64_t errors_before = protocol_error_total();
  const auto start = std::chrono::steady_clock::now();

  const std::vector<std::size_t> tracked = fleet.tracked_drives();
  out.drives_tracked = tracked.size();

  std::vector<std::size_t> to_skip = options.skip_records;
  to_skip.resize(router.shard_count(), 0);

  std::unique_ptr<IngestServer> server;
  std::unique_ptr<TelemetryClient> client;
  if (options.over_loopback) {
    server = std::make_unique<IngestServer>(router, ServerConfig{});
    client = std::make_unique<TelemetryClient>(server->port());
  }

  // (drive id, failed) for every drive that produced records — the ground
  // truth for the drive-level verdicts after the chunks are long freed.
  std::vector<std::pair<std::uint64_t, bool>> flags;
  flags.reserve(tracked.size());

  serve::ReplayReport& totals = out.sharded.replay;
  for (std::size_t b = 0; b < tracked.size() && !totals.interrupted;
       b += options.chunk_drives) {
    const std::vector<sim::DriveTimeSeries> telemetry =
        fleet.generate_telemetry_chunk(tracked, b, b + options.chunk_drives,
                                       options.generation_threads);
    ++out.chunks;
    for (const auto& series : telemetry) {
      flags.emplace_back(series.drive_id, series.failed);
    }
    const serve::FleetReplayer replayer(telemetry);
    DayIndex current_day = replayer.first_day() - 1;
    for (const serve::FleetReplayer::Arrival& arrival : replayer.arrivals()) {
      std::size_t& budget = to_skip[router.shard_of(arrival.drive_id)];
      if (budget > 0) {
        --budget;
        ++totals.records_skipped;
        continue;
      }
      if (options.cancel != nullptr && *options.cancel) {
        totals.interrupted = true;
        break;
      }
      if (arrival.day != current_day) {
        current_day = arrival.day;
        ++totals.days_replayed;  // per-chunk day passes, not unique days
      }
      if (client) {
        client->send_record(arrival.drive_id, arrival.vendor,
                            *arrival.record);
      } else {
        router.submit({arrival.drive_id, arrival.vendor, *arrival.record});
      }
      ++totals.records_submitted;
      if (options.kill_after_records > 0 &&
          totals.records_submitted >= options.kill_after_records) {
        // Die exactly as a power cut would: no flush, no destructors.
        std::raise(SIGKILL);
      }
    }
  }

  if (client) {
    client->sync();
    client->close();
    client.reset();
  }
  if (server) {
    server->stop();
    server.reset();
  }
  router.flush();
  finish_report(out.sharded, router, start);

  std::unordered_set<std::uint64_t> alerted;
  alerted.reserve(out.sharded.replay.alerts.size());
  for (const auto& alert : out.sharded.replay.alerts) {
    alerted.insert(alert.drive_id);
  }
  core::DriveLevelMetrics& drives = out.sharded.replay.drives;
  for (const auto& [drive_id, failed] : flags) {
    if (failed) {
      ++drives.faulty_drives;
      if (alerted.count(drive_id)) ++drives.detected_drives;
    } else {
      ++drives.healthy_drives;
      if (alerted.count(drive_id)) ++drives.false_alarm_drives;
    }
  }
  out.sharded.protocol_errors = protocol_error_total() - errors_before;
  return out;
}

MultiprocReplayReport replay_fleet_multiproc(
    ShardedClient& client, sim::FleetSimulator& fleet,
    const MultiprocReplayOptions& options) {
  if (options.chunk_drives == 0) {
    throw std::invalid_argument(
        "replay_fleet_multiproc: chunk_drives must be >= 1");
  }
  const std::size_t topology = options.topology_shards == 0
                                   ? client.shard_count()
                                   : options.topology_shards;
  if (!options.skip_records.empty() &&
      options.skip_records.size() != topology) {
    throw std::invalid_argument(
        "replay_fleet_multiproc: skip_records size must match the topology "
        "shard count");
  }
  MultiprocReplayReport out;
  const auto start = std::chrono::steady_clock::now();

  const std::vector<std::size_t> tracked = fleet.tracked_drives();
  out.drives_tracked = tracked.size();
  out.drive_flags.reserve(tracked.size());

  std::vector<std::size_t> to_skip = options.skip_records;
  to_skip.resize(topology, 0);

  for (std::size_t b = 0; b < tracked.size() && !out.interrupted;
       b += options.chunk_drives) {
    const std::vector<sim::DriveTimeSeries> telemetry =
        fleet.generate_telemetry_chunk(tracked, b, b + options.chunk_drives,
                                       options.generation_threads);
    ++out.chunks;
    for (const auto& series : telemetry) {
      out.drive_flags.emplace_back(series.drive_id, series.failed);
    }
    const serve::FleetReplayer replayer(telemetry);
    DayIndex current_day = replayer.first_day() - 1;
    for (const serve::FleetReplayer::Arrival& arrival : replayer.arrivals()) {
      std::size_t& budget =
          to_skip[serve::drive_shard(arrival.drive_id, topology)];
      if (budget > 0) {
        --budget;
        ++out.records_skipped;
        continue;
      }
      if (options.cancel != nullptr && *options.cancel) {
        out.interrupted = true;
        break;
      }
      if (arrival.day != current_day) {
        current_day = arrival.day;
        ++out.days_replayed;
      }
      client.send_record(arrival.drive_id, arrival.vendor, *arrival.record);
      ++out.records_submitted;
      if (options.kill_after_records > 0 &&
          out.records_submitted >= options.kill_after_records) {
        // The caller SIGKILLs one shard here; feeding stops so the record
        // prefix the surviving shards saw is exact and reproducible.
        if (options.on_kill) options.on_kill();
        out.interrupted = true;
        break;
      }
    }
  }

  if (!out.interrupted) {
    client.flush_buffers();
    out.totals = client.sync();
  }
  const auto end = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(end - start).count();
  out.records_per_sec =
      out.wall_seconds > 0.0
          ? static_cast<double>(out.records_submitted) / out.wall_seconds
          : 0.0;
  return out;
}

std::vector<core::Alert> merge_alert_files(
    const std::vector<std::string>& paths) {
  std::vector<core::Alert> merged;
  for (const auto& path : paths) {
    std::ifstream in(path);
    if (!in) {
      throw std::runtime_error("merge_alert_files: cannot read " + path);
    }
    std::uint64_t drive_id = 0;
    long day = 0;
    double score = 0.0;
    while (in >> drive_id >> day >> score) {
      core::Alert alert;
      alert.drive_id = drive_id;
      alert.day = static_cast<DayIndex>(day);
      alert.score = score;
      merged.push_back(alert);
    }
    if (!in.eof()) {
      throw std::runtime_error("merge_alert_files: malformed line in " + path);
    }
  }
  // Same total order ShardRouter::alerts() uses: a drive alerts at most
  // once per day and lives on one shard, so (day, drive id) is canonical.
  std::sort(merged.begin(), merged.end(),
            [](const core::Alert& a, const core::Alert& b) {
              if (a.day != b.day) return a.day < b.day;
              return a.drive_id < b.drive_id;
            });
  return merged;
}

}  // namespace mfpa::net
