// Drive-hash router over N in-process scoring engines.
//
// The paper's deployment scores ~2.3M drives; a single micro-batched
// ScoringEngine drain loop eventually saturates one core, so the serving
// tier shards: each engine owns its own DriveStateStore, alert-policy
// state, and (optionally) its own durable WAL + checkpoint directory, and
// drives are routed by the same Fibonacci drive-id hash the store's lock
// stripes and the WAL's segment files already use (serve::drive_shard). A
// drive's records therefore always land on the same shard in submission
// order, which is the only ordering the batch/online parity contract needs
// — so the merged alert stream is identical for every shard count, proven
// by tests/integration/test_fleet_serving.cpp.
//
// Backpressure composes with the engines': submit() routes to the owning
// shard and blocks (or sheds, under shed_on_full) exactly as that engine's
// queue dictates. The net server calls submit() from its poll loop, turning
// a full shard queue into TCP backpressure on the ingesting connection.
//
// Durability: with `durable_root` set, shard i recovers from and logs to
// `<durable_root>/shard-NNN`. resume_records() reports each shard's
// durably applied record count; a resuming feed skips exactly that many
// records *of that shard's substream* (see net/fleet_replay).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/online_predictor.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_engine.hpp"

namespace mfpa::net {

struct ShardRouterConfig {
  /// Engine instances; must be >= 1.
  std::size_t shards = 1;
  /// Template configuration applied to every shard. `instance_label` and
  /// `durability.dir` are overwritten per shard.
  serve::EngineConfig engine;
  /// Per-shard durable directories `<durable_root>/shard-NNN`; empty
  /// disables durability regardless of the template.
  std::string durable_root;
};

/// Per-shard accounting snapshot plus the merged fleet totals.
struct RouterStats {
  std::vector<serve::EngineStats> shards;
  std::uint64_t records_processed = 0;
  std::uint64_t records_shed = 0;
  std::uint64_t rows_scored = 0;
  std::uint64_t alerts = 0;
  /// Largest per-shard queue high-water mark — the router-level congestion
  /// signal (per-shard values stay visible in `shards` and in the
  /// mfpa_serve_max_queue_depth{engine="shard-N"} gauges).
  std::size_t max_queue_depth = 0;
};

class ShardRouter {
 public:
  /// Constructs every shard engine (recovering each from its durable
  /// directory when durable_root is set). The registry must outlive the
  /// router. Throws std::invalid_argument for shards == 0.
  ShardRouter(const serve::ModelRegistry& registry, ShardRouterConfig config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t shard_count() const noexcept { return engines_.size(); }
  std::size_t shard_of(std::uint64_t drive_id) const noexcept {
    return serve::drive_shard(drive_id, engines_.size());
  }

  serve::ScoringEngine& shard(std::size_t i) { return *engines_.at(i); }
  const serve::ScoringEngine& shard(std::size_t i) const {
    return *engines_.at(i);
  }

  /// Routes one record to its owning shard. Returns false only when that
  /// shard shed it (shed_on_full).
  bool submit(const serve::TelemetryUpdate& update);

  /// Blocks until every shard has drained everything submitted so far.
  void flush();

  /// Stops every shard (flushing and sealing durable state). Idempotent.
  void stop();

  /// Flushes and checkpoints every durable shard.
  void checkpoint_now();

  /// Each shard's durably applied record count (empty-dir shards report 0).
  std::vector<std::size_t> resume_records() const;

  /// Every shard's alerts merged into the canonical fleet order
  /// (day, drive id) — identical for every shard count.
  std::vector<core::Alert> alerts() const;

  RouterStats stats() const;

 private:
  std::vector<std::unique_ptr<serve::ScoringEngine>> engines_;
};

}  // namespace mfpa::net
