// Drive-hash router over N in-process scoring engines.
//
// The paper's deployment scores ~2.3M drives; a single micro-batched
// ScoringEngine drain loop eventually saturates one core, so the serving
// tier shards: each engine owns its own DriveStateStore, alert-policy
// state, and (optionally) its own durable WAL + checkpoint directory, and
// drives are routed by the same Fibonacci drive-id hash the store's lock
// stripes and the WAL's segment files already use (serve::drive_shard). A
// drive's records therefore always land on the same shard in submission
// order, which is the only ordering the batch/online parity contract needs
// — so the merged alert stream is identical for every shard count, proven
// by tests/integration/test_fleet_serving.cpp.
//
// Backpressure composes with the engines': submit() routes to the owning
// shard and blocks (or sheds, under shed_on_full) exactly as that engine's
// queue dictates. The net server calls submit() from its poll loop, turning
// a full shard queue into TCP backpressure on the ingesting connection.
//
// Durability: with `durable_root` set, shard i recovers from and logs to
// `<durable_root>/shard-NNN`. resume_records() reports each shard's
// durably applied record count; a resuming feed skips exactly that many
// records *of that shard's substream* (see net/fleet_replay).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/online_predictor.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_engine.hpp"

namespace mfpa::net {

struct ShardRouterConfig {
  /// Engine instances owned by THIS router; must be >= 1.
  std::size_t shards = 1;
  /// Template configuration applied to every shard. `instance_label` and
  /// `durability.dir` are overwritten per shard.
  serve::EngineConfig engine;
  /// Per-shard durable directories `<durable_root>/shard-NNN` (NNN is the
  /// GLOBAL shard index); empty disables durability regardless of the
  /// template.
  std::string durable_root;
  /// Total shards in the fleet topology (0 = `shards`, the single-process
  /// case). A multi-process deployment runs one router per process with
  /// `shards = 1`, `first_shard = k`, `topology_shards = N`: drive routing
  /// hashes over the full topology, while this router owns only its slice.
  std::size_t topology_shards = 0;
  /// Global index of this router's first owned shard.
  std::size_t first_shard = 0;
};

/// Per-shard accounting snapshot plus the merged fleet totals.
struct RouterStats {
  std::vector<serve::EngineStats> shards;
  std::uint64_t records_processed = 0;
  std::uint64_t records_shed = 0;
  std::uint64_t rows_scored = 0;
  std::uint64_t alerts = 0;
  /// Largest per-shard queue high-water mark — the router-level congestion
  /// signal (per-shard values stay visible in `shards` and in the
  /// mfpa_serve_max_queue_depth{engine="shard-N"} gauges).
  std::size_t max_queue_depth = 0;
};

class ShardRouter {
 public:
  /// Constructs every shard engine (recovering each from its durable
  /// directory when durable_root is set). The registry must outlive the
  /// router. Throws std::invalid_argument for shards == 0.
  ShardRouter(const serve::ModelRegistry& registry, ShardRouterConfig config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  std::size_t shard_count() const noexcept { return engines_.size(); }
  /// Total shards in the topology this router routes within (== shard_count
  /// unless this router is a process-local slice).
  std::size_t topology_shards() const noexcept { return topology_shards_; }
  /// Global index of the first shard this router owns.
  std::size_t first_shard() const noexcept { return first_shard_; }

  /// Global shard index of a drive within the full topology.
  std::size_t global_shard_of(std::uint64_t drive_id) const noexcept {
    return serve::drive_shard(drive_id, topology_shards_);
  }
  /// Whether this router owns the drive's shard. Always true for a
  /// full-topology router.
  bool owns(std::uint64_t drive_id) const noexcept {
    const std::size_t g = global_shard_of(drive_id);
    return g >= first_shard_ && g < first_shard_ + engines_.size();
  }
  /// Local engine index of an owned drive (callers in a sliced topology
  /// must check owns() first).
  std::size_t shard_of(std::uint64_t drive_id) const noexcept {
    return global_shard_of(drive_id) - first_shard_;
  }

  serve::ScoringEngine& shard(std::size_t i) { return *engines_.at(i); }
  const serve::ScoringEngine& shard(std::size_t i) const {
    return *engines_.at(i);
  }

  /// Routes one record to its owning shard. Returns false only when that
  /// shard shed it (shed_on_full). Throws std::invalid_argument for a drive
  /// this router's slice does not own — a misroute must never touch another
  /// shard's state (the net server closes such connections instead of
  /// submitting).
  bool submit(const serve::TelemetryUpdate& update);

  /// Blocks until every shard has drained everything submitted so far.
  void flush();

  /// Stops every shard (flushing and sealing durable state). Idempotent.
  void stop();

  /// Flushes and checkpoints every durable shard.
  void checkpoint_now();

  /// Each shard's durably applied record count (empty-dir shards report 0).
  std::vector<std::size_t> resume_records() const;

  /// Every shard's alerts merged into the canonical fleet order
  /// (day, drive id) — identical for every shard count.
  std::vector<core::Alert> alerts() const;

  RouterStats stats() const;

 private:
  std::vector<std::unique_ptr<serve::ScoringEngine>> engines_;
  std::size_t topology_shards_ = 1;
  std::size_t first_shard_ = 0;
};

}  // namespace mfpa::net
