// Metric snapshot exporters — the two formats the outside world reads.
//
// JSON (`mfpa.metrics.v1`): a machine-stable schema consumed by bench
// JSON artifacts and CI diffs. Determinism is part of the contract and is
// locked by tests/obs/test_export.cpp: metrics sorted by (name, labels),
// object keys emitted in alphabetical order, numbers rendered with
// format_json_number. Adding a metric is backward-compatible; renaming a
// key or field is a schema break and must bump the schema string.
//
// Prometheus text: the human/scrape surface (`mfpa metrics`,
// `--metrics-dump`). Histograms are rendered as summaries (count / sum /
// p50 / p90 / p99) since the registry tracks fixed-bin tallies, not
// cumulative buckets.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace mfpa::obs {

/// Schema identifier embedded in every JSON export.
inline constexpr const char* kMetricsJsonSchema = "mfpa.metrics.v1";

/// Renders a snapshot as the stable JSON document described above.
std::string to_json(const MetricsSnapshot& snapshot);

/// Renders a snapshot in Prometheus/OpenMetrics-style text.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Writes to_json(snapshot) to `path` (truncating). Throws
/// std::runtime_error when the file cannot be written.
void write_json_file(const std::string& path, const MetricsSnapshot& snapshot);

}  // namespace mfpa::obs
