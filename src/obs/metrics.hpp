// Process-wide metrics substrate — the single place every layer reports to.
//
// Hot-path instruments are lock-free: Counter and Gauge are single
// std::atomic words updated with relaxed operations, and HistogramMetric
// keeps one atomic count per bin, so ingestion, training, and serving
// threads record without ever contending on a mutex. The registry itself is
// only locked on the cold paths: registering a metric (first lookup of a
// (name, labels) pair) and taking a snapshot.
//
// Instruments are registered once and live for the registry's lifetime, so
// a component resolves its handles at construction and increments raw
// pointers afterwards. Metric families are identified by name + sorted
// label set; re-requesting the same family member returns the same
// instrument (process-wide totals merge for free), and kind or histogram
// geometry mismatches throw rather than silently fork the family.
//
// Tests get isolation instead of cross-test interference:
// `MetricsRegistry::create_isolated()` builds a private registry and
// `ScopedMetricsOverride` re-points the process-wide accessor `registry()`
// for the current scope — components constructed inside the scope resolve
// their handles against the isolated instance (see docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace mfpa::obs {

/// Metric labels: (key, value) pairs, stored sorted by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count (lock-free).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous value with set / add / running-max updates (lock-free).
class Gauge {
 public:
  void set(double x) noexcept { value_.store(x, std::memory_order_relaxed); }
  void add(double x) noexcept {
    value_.fetch_add(x, std::memory_order_relaxed);
  }
  /// Raises the gauge to `x` when `x` exceeds the current value.
  void max_of(double x) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (x > cur && !value_.compare_exchange_weak(
                          cur, x, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bin histogram with one atomic count per bin — the concurrent
/// counterpart of stats::Histogram (same [lo, hi) geometry, same edge-bin
/// clamping), plus a running sum for means. snapshot() materializes a
/// stats::Histogram so callers reuse its quantile estimator.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);

  void observe(double x) noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count() const noexcept;
  double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Copies the atomic bin counts into a stats::Histogram with identical
  /// geometry (each bin's tally re-added at the bin midpoint, which lands in
  /// the same bin — counts and quantiles are exact to one bin width).
  stats::Histogram snapshot() const;

  void reset() noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

/// RAII wall-clock timer feeding a histogram in seconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramMetric& hist) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  HistogramMetric* hist_;
  std::int64_t start_ns_;
};

/// Instrument kind (for snapshots and exporters).
enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported metric value (point-in-time copy, no atomics).
struct MetricValue {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;             ///< kind == kCounter
  double gauge = 0.0;                    ///< kind == kGauge
  stats::Histogram hist{0.0, 1.0, 1};    ///< kind == kHistogram
  double hist_sum = 0.0;                 ///< kind == kHistogram
};

/// Deterministic snapshot: metrics sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default registry (never destroyed before exit).
  static MetricsRegistry& global();

  /// A private registry for tests — combine with ScopedMetricsOverride so
  /// code under test resolves its instruments against it.
  static std::unique_ptr<MetricsRegistry> create_isolated();

  /// Distinguishes registry instances even across address reuse (pointer +
  /// generation pairs are unique for the process lifetime); lets hot paths
  /// cache resolved handles safely (see ml/parallel_for.hpp).
  std::uint64_t generation() const noexcept { return generation_; }

  /// Finds or registers the (name, labels) member of a counter family.
  /// Throws std::invalid_argument when the name is empty or already
  /// registered with a different kind. The reference stays valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// Histograms additionally fix their [lo, hi) × bins geometry on first
  /// registration; a later request with different geometry throws.
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins, const Labels& labels = {});

  /// Point-in-time copy of every registered metric, sorted by
  /// (name, labels) — the exporters' input.
  MetricsSnapshot snapshot() const;

  /// Zeroes every registered instrument (tests; instruments stay
  /// registered and previously resolved handles stay valid).
  void reset();

  /// Number of registered instruments.
  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> hist;
  };

  Entry& find_or_create(const std::string& name, const Labels& labels,
                        MetricKind kind);

  std::uint64_t generation_;
  mutable std::mutex mu_;
  /// Keyed by name + '\x1f' + serialized sorted labels; std::map iteration
  /// order == export order, so snapshots are deterministic by construction.
  std::map<std::string, Entry> entries_;
};

/// The registry instrumented code resolves against: the process-wide
/// default, unless a ScopedMetricsOverride is active.
MetricsRegistry& registry();

/// Re-points obs::registry() at `target` for this object's lifetime
/// (restores the previous target on destruction). Intended for tests;
/// install before constructing the components under test, since components
/// resolve their instrument handles at construction.
class ScopedMetricsOverride {
 public:
  explicit ScopedMetricsOverride(MetricsRegistry& target) noexcept;
  ~ScopedMetricsOverride();
  ScopedMetricsOverride(const ScopedMetricsOverride&) = delete;
  ScopedMetricsOverride& operator=(const ScopedMetricsOverride&) = delete;

 private:
  MetricsRegistry* previous_;
};

/// Monotonic clock in nanoseconds (shared by timers and trace spans).
std::int64_t monotonic_now_ns() noexcept;

}  // namespace mfpa::obs
