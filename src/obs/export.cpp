#include "obs/export.hpp"

#include <fstream>
#include <stdexcept>

#include "common/string_util.hpp"

namespace mfpa::obs {
namespace {

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
  }
  out += "}";
  return out;
}

/// {k="v",...} (empty string when there are no labels).
std::string labels_prometheus(const Labels& labels, const char* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + json_escape(v) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  // Object keys in strict alphabetical order, metrics in snapshot order
  // (already sorted by name then labels) — the golden test diffs this
  // byte-for-byte.
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const auto& m : snapshot.metrics) {
    if (!first) out += ",";
    first = false;
    out += "\n    {";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += "\"labels\": " + labels_json(m.labels);
        out += ", \"name\": \"" + json_escape(m.name) + "\"";
        out += ", \"type\": \"counter\"";
        out += ", \"value\": " + std::to_string(m.counter);
        break;
      case MetricKind::kGauge:
        out += "\"labels\": " + labels_json(m.labels);
        out += ", \"name\": \"" + json_escape(m.name) + "\"";
        out += ", \"type\": \"gauge\"";
        out += ", \"value\": " + format_json_number(m.gauge);
        break;
      case MetricKind::kHistogram: {
        const std::uint64_t n = m.hist.total();
        const double mean =
            n == 0 ? 0.0 : m.hist_sum / static_cast<double>(n);
        out += "\"count\": " + std::to_string(n);
        out += ", \"labels\": " + labels_json(m.labels);
        out += ", \"mean\": " + format_json_number(mean);
        out += ", \"name\": \"" + json_escape(m.name) + "\"";
        out += ", \"p50\": " + format_json_number(m.hist.quantile(0.5));
        out += ", \"p90\": " + format_json_number(m.hist.quantile(0.9));
        out += ", \"p99\": " + format_json_number(m.hist.quantile(0.99));
        out += ", \"sum\": " + format_json_number(m.hist_sum);
        out += ", \"type\": \"histogram\"";
        break;
      }
    }
    out += "}";
  }
  out += "\n  ],\n  \"schema\": \"";
  out += kMetricsJsonSchema;
  out += "\"\n}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_typed;
  for (const auto& m : snapshot.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        if (m.name != last_typed) {
          out += "# TYPE " + m.name + " counter\n";
          last_typed = m.name;
        }
        out += m.name + labels_prometheus(m.labels) + " " +
               std::to_string(m.counter) + "\n";
        break;
      case MetricKind::kGauge:
        if (m.name != last_typed) {
          out += "# TYPE " + m.name + " gauge\n";
          last_typed = m.name;
        }
        out += m.name + labels_prometheus(m.labels) + " " +
               format_json_number(m.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        if (m.name != last_typed) {
          out += "# TYPE " + m.name + " summary\n";
          last_typed = m.name;
        }
        const std::string labels = labels_prometheus(m.labels);
        out += m.name + "_count" + labels + " " +
               std::to_string(m.hist.total()) + "\n";
        out += m.name + "_sum" + labels + " " + format_json_number(m.hist_sum) +
               "\n";
        out += m.name + labels_prometheus(m.labels, "quantile=\"0.5\"") + " " +
               format_json_number(m.hist.quantile(0.5)) + "\n";
        out += m.name + labels_prometheus(m.labels, "quantile=\"0.9\"") + " " +
               format_json_number(m.hist.quantile(0.9)) + "\n";
        out += m.name + labels_prometheus(m.labels, "quantile=\"0.99\"") + " " +
               format_json_number(m.hist.quantile(0.99)) + "\n";
        break;
      }
    }
  }
  return out;
}

void write_json_file(const std::string& path,
                     const MetricsSnapshot& snapshot) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot write metrics file " + path);
  }
  out << to_json(snapshot);
  if (!out) {
    throw std::runtime_error("failed writing metrics file " + path);
  }
}

}  // namespace mfpa::obs
