// Lightweight trace spans — where did the wall-clock go, per operation.
//
// `ScopedSpan` is an RAII marker over a named operation: construction pushes
// onto a thread-local span stack and reads the monotonic clock, destruction
// pops and (when sampled) appends a SpanRecord to the tracer's bounded
// buffer. The stack discipline means spans on one thread are always
// perfectly nested — the exported stream carries (thread, depth, start, end)
// so consumers (and the property tests) can rebuild and verify the tree.
//
// Sampling is decided once per *root* span: with sample_every = N, every
// Nth root span on any thread is recorded together with its entire subtree;
// 0 disables tracing entirely, making a span cost two thread-local updates
// and one relaxed atomic load — cheap enough to leave in hot-ish paths
// (batch drains, fold fits; not per-record loops).
//
// The default tracer is process-wide and disabled; tests use
// `ScopedTracerOverride` with a private Tracer for isolation, mirroring
// obs::ScopedMetricsOverride.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mfpa::obs {

/// One completed, sampled span.
struct SpanRecord {
  std::string name;
  std::uint64_t thread = 0;   ///< sequential per-thread id (first-use order)
  std::uint32_t depth = 0;    ///< nesting depth at open (0 = root)
  std::int64_t start_ns = 0;  ///< monotonic clock
  std::int64_t end_ns = 0;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide default tracer (disabled until configured).
  static Tracer& global();

  /// Records every Nth root span (with its whole subtree); 0 disables.
  void set_sample_every(std::uint64_t n) noexcept {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  std::uint64_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return sample_every() != 0; }

  /// Bounds the completed-span buffer; once full, further spans are counted
  /// in dropped() instead of recorded (export is sampled, not lossless).
  void set_capacity(std::size_t spans);

  /// Moves out everything recorded so far (buffer is emptied).
  std::vector<SpanRecord> take_spans();

  /// Spans lost to the capacity bound since the last take_spans().
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Root-sampling decision (internal, used by ScopedSpan).
  bool sample_root() noexcept;
  /// Appends a completed span (internal, used by ScopedSpan).
  void record(SpanRecord span);

 private:
  std::atomic<std::uint64_t> sample_every_{0};
  std::atomic<std::uint64_t> root_seq_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::size_t capacity_ = 65536;
  std::vector<SpanRecord> spans_;
};

/// The tracer ScopedSpan resolves against: the process-wide default, unless
/// a ScopedTracerOverride is active.
Tracer& tracer();

/// Re-points obs::tracer() at `target` for this object's lifetime. The
/// override only affects *root* spans opened inside the scope — an open
/// span pins its tracer so a subtree never splits across tracers.
class ScopedTracerOverride {
 public:
  explicit ScopedTracerOverride(Tracer& target) noexcept;
  ~ScopedTracerOverride();
  ScopedTracerOverride(const ScopedTracerOverride&) = delete;
  ScopedTracerOverride& operator=(const ScopedTracerOverride&) = delete;

 private:
  Tracer* previous_;
};

/// RAII span over a named operation. `name` must outlive the span (string
/// literals; per-call formatting would defeat the cheap-when-disabled goal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool recorded_ = false;
};

}  // namespace mfpa::obs
