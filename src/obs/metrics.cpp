#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace mfpa::obs {
namespace {

/// Serializes name + sorted labels into the registry's map key. '\x1f'
/// (unit separator) cannot appear in sane metric names, so keys cannot
/// collide across families.
std::string entry_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

std::atomic<std::uint64_t> g_generation{0};
std::atomic<MetricsRegistry*> g_override{nullptr};

}  // namespace

std::int64_t monotonic_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// HistogramMetric

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(std::max<std::size_t>(1, bins)) {
  if (!(hi > lo)) {
    throw std::invalid_argument("HistogramMetric: hi must exceed lo");
  }
}

void HistogramMetric::observe(double x) noexcept {
  // Same edge-bin clamping as stats::Histogram::add, with atomic tallies.
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::ptrdiff_t i =
      static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  i = std::clamp<std::ptrdiff_t>(
      i, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(i)].fetch_add(1,
                                                 std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::uint64_t HistogramMetric::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

stats::Histogram HistogramMetric::snapshot() const {
  stats::Histogram out(lo_, hi_, counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.add_count((out.bin_lo(i) + out.bin_hi(i)) / 2.0,
                  static_cast<std::size_t>(n));
  }
  return out;
}

void HistogramMetric::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ScopedTimer

ScopedTimer::ScopedTimer(HistogramMetric& hist) noexcept
    : hist_(&hist), start_ns_(monotonic_now_ns()) {}

ScopedTimer::~ScopedTimer() {
  hist_->observe(static_cast<double>(monotonic_now_ns() - start_ns_) * 1e-9);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry()
    : generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never freed
  return *instance;
}

std::unique_ptr<MetricsRegistry> MetricsRegistry::create_isolated() {
  return std::make_unique<MetricsRegistry>();
}

// Requires mu_ to be held by the caller: the returned Entry& is only safe
// to mutate (first-time instrument creation) while the lock protects it
// from concurrent first resolutions of the same family.
MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, MetricKind kind) {
  if (name.empty()) {
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  }
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const std::string key = entry_key(name, sorted);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry entry;
    entry.name = name;
    entry.labels = std::move(sorted);
    entry.kind = kind;
    it = entries_.emplace(key, std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered with a different kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, labels, MetricKind::kCounter);
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, labels, MetricKind::kGauge);
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins,
                                            const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = find_or_create(name, labels, MetricKind::kHistogram);
  if (!entry.hist) {
    entry.hist = std::make_unique<HistogramMetric>(lo, hi, bins);
  } else if (entry.hist->lo() != lo || entry.hist->hi() != hi ||
             entry.hist->bins() != std::max<std::size_t>(1, bins)) {
    throw std::invalid_argument(
        "MetricsRegistry: histogram '" + name +
        "' already registered with a different geometry");
  }
  return *entry.hist;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  out.metrics.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)key;
    MetricValue value;
    value.name = entry.name;
    value.labels = entry.labels;
    value.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        value.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        value.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        value.hist = entry.hist->snapshot();
        value.hist_sum = entry.hist->sum();
        break;
    }
    out.metrics.push_back(std::move(value));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    (void)key;
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.hist) entry.hist->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

// ---------------------------------------------------------------------------
// Process-wide accessor + override

MetricsRegistry& registry() {
  MetricsRegistry* override = g_override.load(std::memory_order_acquire);
  return override ? *override : MetricsRegistry::global();
}

ScopedMetricsOverride::ScopedMetricsOverride(MetricsRegistry& target) noexcept
    : previous_(g_override.exchange(&target, std::memory_order_acq_rel)) {}

ScopedMetricsOverride::~ScopedMetricsOverride() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace mfpa::obs
