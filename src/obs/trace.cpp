#include "obs/trace.hpp"

#include "obs/metrics.hpp"  // monotonic_now_ns

namespace mfpa::obs {
namespace {

std::atomic<Tracer*> g_override{nullptr};
std::atomic<std::uint64_t> g_thread_seq{0};

/// Per-thread span state. The whole subtree under one root shares a single
/// sampling decision and tracer, pinned at root open.
struct ThreadTraceState {
  std::uint64_t thread_id =
      g_thread_seq.fetch_add(1, std::memory_order_relaxed);
  std::uint32_t depth = 0;
  bool sampled = false;
  Tracer* pinned = nullptr;
};

thread_local ThreadTraceState t_state;

}  // namespace

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never freed
  return *instance;
}

void Tracer::set_capacity(std::size_t spans) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = spans;
}

std::vector<SpanRecord> Tracer::take_spans() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(spans_);
  dropped_.store(0, std::memory_order_relaxed);
  return out;
}

bool Tracer::sample_root() noexcept {
  const std::uint64_t every = sample_every();
  if (every == 0) return false;
  return root_seq_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

void Tracer::record(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(span));
}

Tracer& tracer() {
  Tracer* override = g_override.load(std::memory_order_acquire);
  return override ? *override : Tracer::global();
}

ScopedTracerOverride::ScopedTracerOverride(Tracer& target) noexcept
    : previous_(g_override.exchange(&target, std::memory_order_acq_rel)) {}

ScopedTracerOverride::~ScopedTracerOverride() {
  g_override.store(previous_, std::memory_order_release);
}

ScopedSpan::ScopedSpan(const char* name) noexcept : name_(name) {
  if (t_state.depth == 0) {
    // Root span: pin the tracer and take the sampling decision for the
    // whole subtree.
    Tracer& t = tracer();
    t_state.pinned = &t;
    t_state.sampled = t.sample_root();
  }
  depth_ = t_state.depth++;
  recorded_ = t_state.sampled;
  if (recorded_) start_ns_ = monotonic_now_ns();
}

ScopedSpan::~ScopedSpan() {
  --t_state.depth;
  if (recorded_) {
    t_state.pinned->record({name_, t_state.thread_id, depth_, start_ns_,
                            monotonic_now_ns()});
  }
  if (t_state.depth == 0) {
    t_state.sampled = false;
    t_state.pinned = nullptr;
  }
}

}  // namespace mfpa::obs
