// The `mfpa` command-line tool: the deployment surface of the library.
//
//   mfpa simulate --scenario=default --seed=42 --telemetry=t.csv --tickets=k.csv
//   mfpa train    --telemetry=t.csv --tickets=k.csv --model=m.txt [--vendor=0]
//                 [--group=SFWB] [--algorithm=RF] [--report]
//   mfpa predict  --telemetry=t.csv --model=m.txt [--threshold=0.5] [--top=20]
//   mfpa evaluate --telemetry=t.csv --tickets=k.csv --model=m.txt [--vendor=0]
//   mfpa info     --model=m.txt
//
// Command logic lives in this library (testable without spawning processes);
// tools/mfpa_main.cpp is a thin argv wrapper.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace mfpa::cli {

/// Parsed command line: a verb plus --key=value options.
struct CommandLine {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.contains(key); }
  /// Option value or `fallback`.
  std::string get(const std::string& key, const std::string& fallback = "") const;
  /// Numeric option; throws std::invalid_argument on malformed numbers.
  double get_number(const std::string& key, double fallback) const;
  /// Required option; throws std::invalid_argument when missing.
  std::string require(const std::string& key) const;
};

/// Parses argv (after the program name). Accepts "--key=value" and bare
/// "--flag" (stored with an empty value). Throws std::invalid_argument on
/// malformed arguments.
CommandLine parse_command_line(const std::vector<std::string>& args);

/// Executes one command; output goes to `out`, diagnostics to `err`.
/// Returns a process exit code (0 success, 1 user error, 2 runtime failure).
int run_command(const CommandLine& cmd, std::ostream& out, std::ostream& err);

/// Full usage text.
std::string usage();

}  // namespace mfpa::cli
