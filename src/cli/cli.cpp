#include "cli/cli.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "common/string_util.hpp"
#include "common/table_printer.hpp"
#include "core/health_report.hpp"
#include "net/fleet_replay.hpp"
#include "net/forwarding_sink.hpp"
#include "net/server.hpp"
#include "net/sharded_client.hpp"
#include "net/supervisor.hpp"
#include "obs/export.hpp"
#include "core/mfpa.hpp"
#include "core/online_predictor.hpp"
#include "ml/serialize.hpp"
#include "ml/simd.hpp"
#include "serve/replay.hpp"
#include "sim/fleet.hpp"
#include "sim/telemetry_io.hpp"
#include "sim/validate.hpp"

namespace mfpa::cli {
namespace {

/// Set by SIGTERM/SIGINT during serve-replay; the feed checks it between
/// submissions, drains the queue, seals the durable state, and exits 0.
volatile std::sig_atomic_t g_shutdown_requested = 0;

extern "C" void handle_shutdown_signal(int) { g_shutdown_requested = 1; }

/// Fail-fast parse of a flag that must be a positive integer (--shards,
/// --chunk-drives, ...): rejects zero, negatives, and fractions with the
/// offending value in the message, before any simulation or IO runs.
std::size_t get_positive_count(const CommandLine& cmd, const std::string& key,
                               std::size_t fallback) {
  const double v = cmd.get_number(key, static_cast<double>(fallback));
  if (v < 1.0 || v != std::floor(v)) {
    throw std::invalid_argument("option --" + key +
                                " expects a positive integer, got '" +
                                cmd.get(key, "") + "'");
  }
  return static_cast<std::size_t>(v);
}

/// Fail-fast --seed: a whole non-negative number (silent wraparound of a
/// negative seed would change every derived random stream).
std::uint64_t get_seed(const CommandLine& cmd, std::uint64_t fallback = 42) {
  const double v = cmd.get_number("seed", static_cast<double>(fallback));
  if (v < 0.0 || v != std::floor(v)) {
    throw std::invalid_argument(
        "option --seed expects a non-negative integer, got '" +
        cmd.get("seed", "") + "'");
  }
  return static_cast<std::uint64_t>(v);
}

RobustnessConfig robustness_from(const CommandLine& cmd) {
  if (cmd.has("strict") && cmd.has("lenient")) {
    throw std::invalid_argument("--strict and --lenient are mutually exclusive");
  }
  RobustnessConfig robustness;
  robustness.mode =
      cmd.has("lenient") ? IngestMode::kLenient : IngestMode::kStrict;
  return robustness;
}

/// Prints the dirty-input accounting when there is anything to say (always
/// under --lenient, so a clean batch is confirmed clean).
void report_ingest(const IngestStats& stats, const RobustnessConfig& robustness,
                   std::ostream& out) {
  if (robustness.lenient() || !stats.clean()) print_ingest_stats(stats, out);
}

core::MfpaConfig config_from(const CommandLine& cmd) {
  core::MfpaConfig config;
  config.preprocess.robustness = robustness_from(cmd);
  config.vendor = static_cast<int>(cmd.get_number("vendor", -1));
  config.algorithm = cmd.get("algorithm", "RF");
  config.group = core::feature_group_from_name(cmd.get("group", "SFWB"));
  config.theta = static_cast<int>(cmd.get_number("theta", 7));
  config.positive_window =
      static_cast<int>(cmd.get_number("positive-window", 7));
  config.neg_per_pos = cmd.get_number("neg-per-pos", 3.0);
  config.train_fraction = cmd.get_number("train-fraction", 0.7);
  config.decision_threshold = cmd.get_number("threshold", 0.5);
  config.seed = get_seed(cmd);
  return config;
}

/// Writes the full alert stream, one line per alert with round-trip score
/// precision — the byte-comparable proof artifact of the crash-recovery
/// harnesses (single-engine emission order; canonical (day, drive id)
/// order for sharded runs).
void write_alerts_file(const std::string& path,
                       const std::vector<core::Alert>& alerts,
                       std::ostream& out) {
  std::ofstream alerts_file(path, std::ios::binary | std::ios::trunc);
  if (!alerts_file) {
    throw std::runtime_error("cannot write alerts to " + path);
  }
  for (const auto& alert : alerts) {
    alerts_file << alert.drive_id << ' ' << alert.day << ' ';
    ml::io::write_double(alerts_file, alert.score);
    alerts_file << '\n';
  }
  alerts_file.flush();
  if (!alerts_file) {
    throw std::runtime_error("write failed for " + path);
  }
  out << "wrote " << alerts.size() << " alerts to " << path << "\n";
}

/// The replay scorecard shared by serve-replay (1 or N shards) and
/// fleet-replay; `extra` rows are appended before printing.
void print_replay_table(const serve::ReplayReport& report,
                        const std::vector<std::pair<std::string, std::string>>&
                            extra,
                        std::ostream& out) {
  TablePrinter table({"metric", "value"});
  table.add_row({"records submitted", std::to_string(report.engine.submitted)});
  if (report.records_skipped > 0) {
    table.add_row({"records resumed past",
                   std::to_string(report.records_skipped)});
  }
  table.add_row({"records shed", std::to_string(report.engine.shed)});
  table.add_row({"days replayed", std::to_string(report.days_replayed)});
  table.add_row({"throughput (rec/s)",
                 format_with_commas(
                     static_cast<long long>(report.records_per_sec))});
  table.add_row({"micro-batches", std::to_string(report.engine.batches)});
  table.add_row(
      {"mean batch size",
       format_double(report.engine.batches == 0
                         ? 0.0
                         : static_cast<double>(report.engine.records_processed) /
                               static_cast<double>(report.engine.batches),
                     1)});
  table.add_row({"max queue depth",
                 std::to_string(report.engine.max_queue_depth)});
  table.add_row({"latency p50 (us)",
                 format_double(report.engine.latency_us.quantile(0.5), 1)});
  table.add_row({"latency p99 (us)",
                 format_double(report.engine.latency_us.quantile(0.99), 1)});
  table.add_row({"rows scored", std::to_string(report.engine.rows_scored)});
  table.add_row({"alerts", std::to_string(report.engine.alerts)});
  table.add_row({"drives quarantined",
                 std::to_string(report.store.drives_quarantined)});
  table.add_row({"drive-level TPR", format_percent(report.drives.drive_tpr())});
  table.add_row({"drive-level FPR", format_percent(report.drives.drive_fpr())});
  for (const auto& [k, v] : extra) table.add_row({k, v});
  table.print(out);
}

/// Builds the per-shard engine template + router config from the shared
/// serve-replay/fleet-replay flags. `durable-dir` becomes the per-shard
/// durable root.
net::ShardRouterConfig router_config_from(const CommandLine& cmd,
                                          const core::MfpaConfig& train_config,
                                          std::size_t shards,
                                          std::size_t threads) {
  net::ShardRouterConfig router_config;
  router_config.shards = shards;
  serve::EngineConfig& engine = router_config.engine;
  engine.store.preprocess = train_config.preprocess;
  engine.store.shards = threads;
  engine.alert_policy.min_consecutive =
      static_cast<int>(cmd.get_number("alert-consecutive", 1));
  engine.alert_policy.cooldown_days =
      static_cast<int>(cmd.get_number("cooldown", 0));
  engine.queue_capacity =
      static_cast<std::size_t>(cmd.get_number("queue-capacity", 4096));
  engine.max_batch = static_cast<std::size_t>(cmd.get_number("batch", 256));
  engine.shed_on_full = cmd.has("shed");
  engine.durability.group_commit_records =
      static_cast<std::size_t>(cmd.get_number("wal-group-commit", 256));
  engine.durability.checkpoint_interval_records =
      static_cast<std::size_t>(cmd.get_number("checkpoint-interval", 4096));
  router_config.durable_root = cmd.get("durable-dir", "");
  return router_config;
}

/// Prints each recovering shard's resume position (sharded runs' analogue
/// of the single-engine recovery banner).
std::size_t report_shard_recovery(const net::ShardRouter& router,
                                  std::ostream& out) {
  const auto resume = router.resume_records();
  std::size_t total = 0;
  for (std::size_t r : resume) total += r;
  if (total > 0) {
    out << "resuming feed after " << total << " durable records across "
        << resume.size() << " shards (";
    for (std::size_t i = 0; i < resume.size(); ++i) {
      out << (i > 0 ? " " : "") << "shard-" << i << "=" << resume[i];
    }
    out << ")\n";
  }
  return total;
}

/// Pins the inference kernel tier when --simd is given (shared by every
/// serving-side command; validated before any telemetry work).
void apply_simd_flag(const CommandLine& cmd) {
  if (!cmd.has("simd")) return;
  std::optional<ml::SimdLevel> level;
  if (!ml::parse_simd_level(cmd.require("simd"), level)) {
    throw std::runtime_error("--simd must be auto, scalar, neon, or avx2");
  }
  ml::set_simd_override(level);
}

/// Atomically publishes a shard process's readiness file
/// ("<port> <resume_records> <model_version>"): the supervisor never sees
/// a partial write because the content lands under a dot-temp name first.
void write_port_file(const std::string& path, std::uint16_t port,
                     std::size_t resume_records, int model_version) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    f << port << ' ' << resume_records << ' ' << model_version << '\n';
    f.flush();
    if (!f) throw std::runtime_error("cannot write port file " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

/// Parses --shard-ports=P1,P2,... into per-shard ports (global shard
/// order).
std::vector<std::uint16_t> parse_port_list(const std::string& spec) {
  std::vector<std::uint16_t> ports;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string item =
        spec.substr(begin, comma == std::string::npos ? std::string::npos
                                                      : comma - begin);
    std::size_t consumed = 0;
    unsigned long port = 0;
    try {
      port = std::stoul(item, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != item.size() || port == 0 || port > 0xFFFF) {
      throw std::invalid_argument(
          "option --shard-ports expects comma-separated ports, got '" + spec +
          "'");
    }
    ports.push_back(static_cast<std::uint16_t>(port));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return ports;
}

/// This process's own executable — multiproc fleet-replay re-execs it as
/// the per-shard `shard-serve` children.
std::string self_binary_path() {
  std::error_code ec;
  const auto path = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) {
    throw std::runtime_error("cannot resolve /proc/self/exe: " + ec.message());
  }
  return path.string();
}

/// Flags a multiproc parent forwards verbatim to its shard-serve children,
/// so every process builds the identical engine configuration.
std::vector<std::string> forwarded_child_flags(const CommandLine& cmd) {
  static const char* kValueFlags[] = {
      "alert-consecutive", "cooldown",  "queue-capacity",
      "batch",             "threads",   "wal-group-commit",
      "checkpoint-interval", "simd",
  };
  static const char* kBoolFlags[] = {"shed", "no-flat", "quantized", "strict",
                                     "lenient"};
  std::vector<std::string> args;
  for (const char* flag : kValueFlags) {
    if (cmd.has(flag)) args.push_back("--" + std::string(flag) + "=" +
                                      cmd.get(flag, ""));
  }
  for (const char* flag : kBoolFlags) {
    if (cmd.has(flag)) args.push_back("--" + std::string(flag));
  }
  return args;
}

void print_report(const core::MfpaReport& report, std::ostream& out) {
  TablePrinter table({"metric", "value"});
  table.add_row({"TPR", format_percent(report.cm.tpr())});
  table.add_row({"FPR", format_percent(report.cm.fpr())});
  table.add_row({"ACC", format_percent(report.cm.accuracy())});
  table.add_row({"PDR", format_percent(report.cm.pdr())});
  table.add_row({"AUC", format_percent(report.auc)});
  table.add_row({"threshold", format_double(report.threshold, 3)});
  table.add_row({"train samples", std::to_string(report.train_size)});
  table.add_row({"test samples", std::to_string(report.test_size)});
  table.add_row({"test positives", std::to_string(report.test_positives)});
  table.print(out);
}

int cmd_simulate(const CommandLine& cmd, std::ostream& out) {
  auto scenario =
      sim::scenario_by_name(cmd.get("scenario", "default"), get_seed(cmd));
  // Per-knob overrides on top of the preset.
  scenario.fleet_scale = cmd.get_number("scale", scenario.fleet_scale);
  scenario.horizon_days = static_cast<DayIndex>(
      cmd.get_number("horizon", scenario.horizon_days));
  scenario.telemetry_end =
      std::min(scenario.telemetry_end, scenario.horizon_days);
  scenario.healthy_per_failed =
      cmd.get_number("healthy-per-failed", scenario.healthy_per_failed);
  if (cmd.has("no-drift")) scenario.enable_drift = false;
  sim::FleetSimulator fleet(scenario);
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();
  sim::write_telemetry_file(cmd.require("telemetry"), telemetry);
  sim::write_tickets_file(cmd.require("tickets"), tickets);
  std::size_t records = 0;
  for (const auto& t : telemetry) records += t.records.size();
  out << "wrote " << telemetry.size() << " drives / "
      << format_with_commas(static_cast<long long>(records)) << " records to "
      << cmd.require("telemetry") << "\nwrote " << tickets.size()
      << " tickets to " << cmd.require("tickets") << "\n";
  return 0;
}

int cmd_train(const CommandLine& cmd, std::ostream& out) {
  // Validate the configuration before any file IO for fast user feedback.
  core::MfpaPipeline pipeline(config_from(cmd));
  const auto robustness = robustness_from(cmd);
  IngestStats read_stats;
  const auto telemetry =
      sim::read_telemetry_file(cmd.require("telemetry"), robustness, &read_stats);
  const auto tickets =
      sim::read_tickets_file(cmd.require("tickets"), robustness, &read_stats);
  auto report = pipeline.run(telemetry, tickets);
  report.ingest_stats.merge(read_stats);
  ml::save_classifier_file(cmd.require("model"), pipeline.model());
  out << "trained " << pipeline.model().name() << " on "
      << report.train_size << " samples; model written to "
      << cmd.require("model") << "\n";
  report_ingest(report.ingest_stats, robustness, out);
  if (cmd.has("report")) print_report(report, out);
  return 0;
}

int cmd_evaluate(const CommandLine& cmd, std::ostream& out) {
  // Evaluation retrains with the same configuration and reports the honest
  // held-out slice (the model file is not needed; it documents the deploy).
  core::MfpaPipeline pipeline(config_from(cmd));
  const auto robustness = robustness_from(cmd);
  IngestStats read_stats;
  const auto telemetry =
      sim::read_telemetry_file(cmd.require("telemetry"), robustness, &read_stats);
  const auto tickets =
      sim::read_tickets_file(cmd.require("tickets"), robustness, &read_stats);
  auto report = pipeline.run(telemetry, tickets);
  report.ingest_stats.merge(read_stats);
  report_ingest(report.ingest_stats, robustness, out);
  print_report(report, out);
  const auto drive_level = core::OnlinePredictor::drive_level(report);
  out << "drive-level: TPR "
      << format_percent(drive_level.drive_tpr()) << " ("
      << drive_level.detected_drives << "/" << drive_level.faulty_drives
      << "), FPR " << format_percent(drive_level.drive_fpr()) << " ("
      << drive_level.false_alarm_drives << "/" << drive_level.healthy_drives
      << ")\n";
  return 0;
}

int cmd_predict(const CommandLine& cmd, std::ostream& out) {
  const auto robustness = robustness_from(cmd);
  IngestStats ingest;
  const auto telemetry =
      sim::read_telemetry_file(cmd.require("telemetry"), robustness, &ingest);
  const auto model = ml::load_classifier_file(cmd.require("model"));
  const double threshold = cmd.get_number("threshold", 0.5);
  const auto top = static_cast<std::size_t>(cmd.get_number("top", 20));

  // Score the latest observation of every drive; the feature layout must
  // match the group the model was trained on.
  const auto group = core::feature_group_from_name(cmd.get("group", "SFWB"));
  core::PreprocessConfig pre_config;
  pre_config.robustness = robustness;
  const core::Preprocessor pre(pre_config);
  const auto drives = pre.process(telemetry, nullptr, &ingest);
  report_ingest(ingest, robustness, out);
  // Firmware vocabulary from the scored data itself (deployment would ship
  // the training-time encoder; the CLI keeps the file format model-only and
  // accepts the small code drift).
  const auto encoder = core::Preprocessor::fit_firmware_encoder(drives);
  core::SampleConfig sc;
  sc.group = group;
  const core::SampleBuilder builder(sc, &encoder);

  struct Scored {
    std::uint64_t drive_id;
    DayIndex day;
    double score;
  };
  std::vector<Scored> scored;
  data::Dataset batch;
  batch.feature_names = builder.feature_names();
  for (const auto& d : drives) {
    if (d.records.empty()) continue;
    batch.add(builder.features_of(d.records.back()), 0,
              {d.drive_id, d.records.back().day, d.vendor});
  }
  if (batch.empty()) {
    out << "no scorable drives\n";
    return 0;
  }
  const auto scores = model->predict_proba(batch.X);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scored.push_back({batch.meta[i].drive_id, batch.meta[i].day, scores[i]});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });

  std::size_t flagged = 0;
  for (const auto& s : scored) flagged += s.score >= threshold;
  out << "scored " << scored.size() << " drives; " << flagged
      << " at/above threshold " << format_double(threshold, 2) << "\n\n";
  TablePrinter table({"rank", "drive", "last obs", "risk score", "flagged"});
  for (std::size_t i = 0; i < std::min(top, scored.size()); ++i) {
    table.add_row({std::to_string(i + 1), std::to_string(scored[i].drive_id),
                   format_date(scored[i].day),
                   format_double(scored[i].score, 4),
                   scored[i].score >= threshold ? "YES" : ""});
  }
  table.print(out);

  if (cmd.has("explain") && !scored.empty()) {
    // Explain flagged drives against the scored population (predominantly
    // healthy, so population medians approximate the healthy reference).
    core::HealthExplainer explainer;
    explainer.fit(batch);
    out << "\nExplanations for flagged drives:\n";
    std::size_t shown = 0;
    for (std::size_t i = 0; i < batch.size() && shown < top; ++i) {
      if (scores[i] < threshold) continue;
      const auto report =
          explainer.explain(batch.X.row(i), batch.meta[i].drive_id,
                            batch.meta[i].day, scores[i]);
      out << report.to_string() << "\n";
      ++shown;
    }
  }
  return 0;
}

int cmd_serve_replay(const CommandLine& cmd, std::ostream& out) {
  // --simd pins the inference kernel tier (scalar/neon/avx2; "auto" probes
  // the CPU). A level the hardware lacks degrades to the strongest
  // available one, so the resolved level is printed later — that is what
  // actually ran.
  apply_simd_flag(cmd);
  // --shards=N (N > 1) routes the same stream across N engine instances by
  // drive-id hash — the sharded serving path (see docs/SERVING.md).
  // Validated before any telemetry work, like every count flag.
  const std::size_t shards = get_positive_count(cmd, "shards", 1);
  const auto robustness = robustness_from(cmd);
  // Input: either a saved telemetry/ticket pair or a generated scenario.
  std::vector<sim::DriveTimeSeries> telemetry;
  std::vector<sim::TroubleTicket> tickets;
  IngestStats read_stats;
  if (cmd.has("telemetry")) {
    telemetry = sim::read_telemetry_file(cmd.require("telemetry"), robustness,
                                         &read_stats);
    tickets =
        sim::read_tickets_file(cmd.require("tickets"), robustness, &read_stats);
  } else {
    auto scenario =
        sim::scenario_by_name(cmd.get("scenario", "default"), get_seed(cmd));
    scenario.fleet_scale = cmd.get_number("scale", scenario.fleet_scale);
    sim::FleetSimulator fleet(scenario);
    telemetry = fleet.generate_telemetry();
    tickets = fleet.tickets();
  }

  const auto registry_dir = cmd.get(
      "registry",
      (std::filesystem::temp_directory_path() / "mfpa-serve-registry").string());
  // A stale registry from a previous run would serve yesterday's model —
  // unless the caller asked for exactly that (--reuse-registry pairs with
  // --durable-dir: a recovering process must score under the same model the
  // checkpoint was taken with).
  const bool reuse_registry = cmd.has("reuse-registry");
  if (!reuse_registry) std::filesystem::remove_all(registry_dir);
  const auto threads =
      static_cast<std::size_t>(cmd.get_number("threads", 0));
  out << "simd kernel: " << ml::to_string(ml::active_simd_level()) << "\n";
  // --no-flat serves from the node-pointer trees instead of the compiled
  // flat-forest representation (probabilities are identical either way;
  // the flag exists for perf A/B runs and debugging). --quantized layers
  // the uint8 representation on top (also identical probabilities; see
  // ml/quantized_forest.hpp).
  serve::ModelRegistry registry(registry_dir, threads, !cmd.has("no-flat"),
                                cmd.has("quantized"));

  auto train_config = config_from(cmd);
  int version = registry.current_version();
  if (reuse_registry && version > 0) {
    out << "reusing model v" << version << " from " << registry_dir << "\n";
  } else {
    version =
        serve::train_and_publish(registry, train_config, telemetry, tickets);
    out << "published " << train_config.algorithm << " v" << version << " to "
        << registry_dir << "\n";
  }

  net::ShardRouterConfig router_config =
      router_config_from(cmd, train_config, shards, threads);
  if (shards > 1) {
    net::ShardRouter router(registry, router_config);
    report_shard_recovery(router, out);
    const serve::FleetReplayer replayer(telemetry);
    net::ShardedReplayOptions replay_options;
    replay_options.skip_records = router.resume_records();
    replay_options.kill_after_records =
        static_cast<std::size_t>(cmd.get_number("kill-after", 0));
    replay_options.cancel = &g_shutdown_requested;
    g_shutdown_requested = 0;
    std::signal(SIGTERM, handle_shutdown_signal);
    std::signal(SIGINT, handle_shutdown_signal);
    const auto sharded = net::replay_sharded(router, replayer, replay_options);
    router.stop();
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    if (sharded.replay.interrupted) {
      out << "shutdown signal received: queue drained, durable state "
             "sealed\n";
    }
    print_replay_table(sharded.replay,
                       {{"shards", std::to_string(router.shard_count())}},
                       out);
    read_stats.merge(sharded.replay.store.ingest);
    report_ingest(read_stats, robustness, out);
    const auto alerts_path = cmd.get("alerts-out", "");
    if (!alerts_path.empty()) {
      write_alerts_file(alerts_path, sharded.replay.alerts, out);
    }
    return 0;
  }

  serve::EngineConfig engine_config = router_config.engine;
  engine_config.durability.dir = router_config.durable_root;
  // Recovery happens in the constructor; corruption and model-version
  // mismatches throw and surface as a loud failure (exit 2).
  serve::ScoringEngine engine(registry, engine_config);

  if (engine.recovery().has_value()) {
    const auto& rec = *engine.recovery();
    out << "durable recovery: "
        << (rec.checkpoint_loaded
                ? "checkpoint @ lsn " + std::to_string(rec.checkpoint_lsn)
                : std::string("no checkpoint"))
        << ", wal tail replayed " << rec.wal.records_replayable
        << ", durable alerts " << rec.alerts.size() << ", torn tails "
        << rec.wal.torn_tails;
    if (rec.checkpoints_skipped > 0) {
      out << ", corrupt checkpoints skipped " << rec.checkpoints_skipped;
    }
    out << "\n";
    if (engine.durable_resume_records() > 0) {
      out << "resuming feed after " << engine.durable_resume_records()
          << " durable records\n";
    }
  }

  const serve::FleetReplayer replayer(telemetry);
  serve::ReplayOptions replay_options;
  replay_options.skip_records = engine.durable_resume_records();
  replay_options.kill_after_records =
      static_cast<std::size_t>(cmd.get_number("kill-after", 0));
  replay_options.cancel = &g_shutdown_requested;
  g_shutdown_requested = 0;
  std::signal(SIGTERM, handle_shutdown_signal);
  std::signal(SIGINT, handle_shutdown_signal);
  const auto report = replayer.replay(engine, replay_options);
  engine.stop();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  if (report.interrupted) {
    out << "shutdown signal received: queue drained, durable state sealed\n";
  }

  print_replay_table(report, {}, out);
  read_stats.merge(report.store.ingest);
  report_ingest(read_stats, robustness, out);

  // The full alert stream (recovered durable prefix + this run) — the
  // byte-comparable proof artifact of the crash-recovery tests.
  const auto alerts_path = cmd.get("alerts-out", "");
  if (!alerts_path.empty()) {
    write_alerts_file(alerts_path, report.alerts, out);
  }
  return 0;
}

/// One shard of the multi-process serving topology: a single-engine
/// sliced ShardRouter behind a require_hello IngestServer. Readiness is
/// published through --port-file; SIGTERM drains the queue, seals the
/// durable state, writes the per-shard alert file, and exits 0 — that
/// contract is what lets the supervising fleet-replay treat "all children
/// exited 0" as the durability barrier.
int cmd_shard_serve(const CommandLine& cmd, std::ostream& out) {
  apply_simd_flag(cmd);
  const std::size_t shard_index =
      static_cast<std::size_t>(cmd.get_number("shard-index", 0));
  const std::size_t shard_count = get_positive_count(cmd, "shard-count", 1);
  if (cmd.get("shard-index", "").empty()) {
    throw std::invalid_argument("shard-serve requires --shard-index");
  }
  if (shard_index >= shard_count) {
    throw std::invalid_argument(
        "option --shard-index must be < --shard-count (got " +
        std::to_string(shard_index) + " of " + std::to_string(shard_count) +
        ")");
  }
  const auto threads = static_cast<std::size_t>(cmd.get_number("threads", 0));
  // A shard process never trains: it serves whatever the registry already
  // holds, so every shard of the topology scores under the same published
  // version (the parent trains once, before spawning).
  serve::ModelRegistry registry(cmd.require("registry"), threads,
                                !cmd.has("no-flat"), cmd.has("quantized"));
  const int version = registry.current_version();
  if (version <= 0) {
    throw std::runtime_error("shard-serve: no published model in " +
                             cmd.require("registry"));
  }

  net::ShardRouterConfig router_config =
      router_config_from(cmd, config_from(cmd), /*shards=*/1, threads);
  router_config.topology_shards = shard_count;
  router_config.first_shard = shard_index;
  net::ShardRouter router(registry, router_config);
  const std::size_t resume = router.resume_records().front();
  if (resume > 0) {
    out << "shard " << shard_index << " resuming after " << resume
        << " durable records\n";
  }

  net::RouterSink sink(router, static_cast<std::uint32_t>(version));
  net::ServerConfig server_config;
  server_config.port =
      static_cast<std::uint16_t>(cmd.get_number("port", 0));
  server_config.require_hello = true;
  net::IngestServer server(sink, server_config);
  out << "shard " << shard_index << "/" << shard_count
      << " serving on 127.0.0.1:" << server.port() << " (model v" << version
      << ", resume=" << resume << ")\n";
  out.flush();
  const auto port_file = cmd.get("port-file", "");
  if (!port_file.empty()) {
    write_port_file(port_file, server.port(), resume, version);
  }

  g_shutdown_requested = 0;
  std::signal(SIGTERM, handle_shutdown_signal);
  std::signal(SIGINT, handle_shutdown_signal);
  while (!g_shutdown_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  // Graceful teardown order matters: the server first finishes decoding
  // everything already buffered, then the router drains its queues and
  // seals the WAL — only then are the alerts complete and durable.
  server.stop();
  router.stop();
  const net::RouterStats stats = router.stats();
  out << "shard " << shard_index << " drained: records "
      << stats.records_processed << ", alerts " << stats.alerts << ", shed "
      << stats.records_shed << "\n";
  const auto alerts_path = cmd.get("alerts-out", "");
  if (!alerts_path.empty()) {
    write_alerts_file(alerts_path, router.alerts(), out);
  }
  return 0;
}

/// Forwarding-router process for shard-oblivious clients: one endpoint
/// that fans records out to the per-shard servers over a ShardedClient.
int cmd_shard_route(const CommandLine& cmd, std::ostream& out) {
  const std::vector<std::uint16_t> shard_ports =
      parse_port_list(cmd.require("shard-ports"));
  net::ShardedClientConfig downstream_config;
  downstream_config.ports = shard_ports;
  downstream_config.model_version =
      static_cast<std::uint32_t>(cmd.get_number("model-version", 0));
  net::ShardedClient downstream(downstream_config);
  net::ForwardingSink sink(downstream);
  net::ServerConfig server_config;
  server_config.port =
      static_cast<std::uint16_t>(cmd.get_number("port", 0));
  net::IngestServer server(sink, server_config);
  out << "routing 127.0.0.1:" << server.port() << " -> "
      << shard_ports.size() << " shards\n";
  out.flush();
  const auto port_file = cmd.get("port-file", "");
  if (!port_file.empty()) {
    write_port_file(port_file, server.port(), 0,
                    static_cast<int>(downstream_config.model_version));
  }

  g_shutdown_requested = 0;
  std::signal(SIGTERM, handle_shutdown_signal);
  std::signal(SIGINT, handle_shutdown_signal);
  while (!g_shutdown_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  server.stop();
  downstream.close();
  out << "router drained\n";
  return 0;
}

/// The multi-process topology behind `fleet-replay --processes=N`: spawn
/// one shard-serve child per shard (plus, under --via-router, a
/// shard-route child), feed the deterministic stream, then terminate the
/// children gracefully and merge their per-shard alert files into the
/// canonical fleet stream. With --kill-shard-after the run SIGKILLs one
/// shard mid-feed and exits non-zero; re-running with the same flags
/// resumes every shard from its own durable state.
int run_fleet_multiproc(const CommandLine& cmd, std::ostream& out,
                        sim::FleetSimulator& fleet,
                        const std::string& registry_dir, int version,
                        std::size_t processes, std::size_t chunk_drives,
                        std::size_t threads) {
  const bool via_router = cmd.has("via-router");
  const auto kill_after =
      static_cast<std::size_t>(cmd.get_number("kill-shard-after", 0));
  const auto kill_shard =
      static_cast<std::size_t>(cmd.get_number("kill-shard", 0));
  if (kill_after > 0 && kill_shard >= processes) {
    throw std::invalid_argument("option --kill-shard must be < --processes");
  }
  const std::string proc_dir = cmd.get(
      "proc-dir",
      (std::filesystem::temp_directory_path() / "mfpa-multiproc").string());
  std::filesystem::create_directories(proc_dir);

  const std::string binary = self_binary_path();
  const std::vector<std::string> forwarded = forwarded_child_flags(cmd);
  const std::string durable_dir = cmd.get("durable-dir", "");

  std::vector<net::ShardProcessSpec> specs;
  std::vector<std::string> alert_files;
  specs.reserve(processes);
  for (std::size_t k = 0; k < processes; ++k) {
    const std::string tag = "shard-" + std::to_string(k);
    net::ShardProcessSpec spec;
    spec.port_file = proc_dir + "/" + tag + ".port";
    spec.log_file = proc_dir + "/" + tag + ".log";
    alert_files.push_back(proc_dir + "/alerts-" + tag + ".txt");
    spec.argv = {binary,
                 "shard-serve",
                 "--shard-index=" + std::to_string(k),
                 "--shard-count=" + std::to_string(processes),
                 "--registry=" + registry_dir,
                 "--port-file=" + spec.port_file,
                 "--alerts-out=" + alert_files.back(),
                 // Written on clean exit; with the .log files these are the
                 // per-shard artifacts CI uploads from --proc-dir.
                 "--metrics-out=" + proc_dir + "/" + tag + ".metrics.json"};
    if (!durable_dir.empty()) {
      spec.argv.push_back("--durable-dir=" + durable_dir);
    }
    spec.argv.insert(spec.argv.end(), forwarded.begin(), forwarded.end());
    specs.push_back(std::move(spec));
  }
  net::ShardProcessSupervisor shard_procs(std::move(specs));
  shard_procs.wait_ready(std::chrono::minutes(2));

  std::vector<std::size_t> skips;
  std::size_t resume_total = 0;
  for (const auto& r : shard_procs.readiness()) {
    skips.push_back(static_cast<std::size_t>(r.resume_records));
    resume_total += static_cast<std::size_t>(r.resume_records);
  }
  if (resume_total > 0) {
    out << "resuming feed after " << resume_total
        << " durable records across " << processes << " shard processes (";
    for (std::size_t k = 0; k < skips.size(); ++k) {
      out << (k > 0 ? " " : "") << "shard-" << k << "=" << skips[k];
    }
    out << ")\n";
  }

  std::unique_ptr<net::ShardProcessSupervisor> router_proc;
  net::ShardedClientConfig client_config;
  client_config.model_version = static_cast<std::uint32_t>(version);
  if (via_router) {
    std::string port_list;
    for (const std::uint16_t p : shard_procs.ports()) {
      if (!port_list.empty()) port_list += ',';
      port_list += std::to_string(p);
    }
    net::ShardProcessSpec spec;
    spec.port_file = proc_dir + "/router.port";
    spec.log_file = proc_dir + "/router.log";
    spec.argv = {binary,
                 "shard-route",
                 "--shard-ports=" + port_list,
                 "--model-version=" + std::to_string(version),
                 "--port-file=" + spec.port_file};
    std::vector<net::ShardProcessSpec> router_specs;
    router_specs.push_back(std::move(spec));
    router_proc =
        std::make_unique<net::ShardProcessSupervisor>(std::move(router_specs));
    router_proc->wait_ready(std::chrono::seconds(30));
    client_config.ports = router_proc->ports();
    // One connection to the router is not the fleet topology; claim the
    // wildcard identity so the handshake stays honest.
    client_config.claim_topology = false;
  } else {
    client_config.ports = shard_procs.ports();
  }
  out << (via_router
              ? "feeding " + std::to_string(processes) +
                    " shard processes through the router process\n"
              : "feeding " + std::to_string(processes) +
                    " shard processes directly (shard-aware client)\n");

  net::MultiprocReplayOptions options;
  options.chunk_drives = chunk_drives;
  options.generation_threads = threads;
  options.skip_records = skips;
  options.topology_shards = processes;
  options.kill_after_records = kill_after;
  options.on_kill = [&] { shard_procs.kill_shard(kill_shard); };
  options.cancel = &g_shutdown_requested;
  g_shutdown_requested = 0;
  std::signal(SIGTERM, handle_shutdown_signal);
  std::signal(SIGINT, handle_shutdown_signal);

  net::MultiprocReplayReport report;
  std::string feed_error;
  try {
    net::ShardedClient client(client_config);
    report = net::replay_fleet_multiproc(client, fleet, options);
    if (!report.interrupted) client.close();
  } catch (const std::exception& e) {
    feed_error = e.what();
  }
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  // Router first so its downstream connections close before the shards
  // stop; the shards then drain, seal their WALs, and write their alert
  // files — the exit statuses below are the durability barrier.
  if (router_proc) router_proc->terminate_all();
  shard_procs.terminate_all();

  bool children_clean = true;
  out << "shard process exit statuses:";
  for (std::size_t k = 0; k < processes; ++k) {
    const int status = shard_procs.exit_status(k);
    out << " shard-" << k << "=" << status;
    if (status != 0) children_clean = false;
  }
  out << "\n";
  if (router_proc) {
    out << "router process exit status: " << router_proc->exit_status(0)
        << "\n";
  }

  if (!feed_error.empty()) {
    throw std::runtime_error("multi-process feed failed: " + feed_error);
  }
  const bool killed = kill_after > 0 && report.records_submitted >= kill_after;
  if (killed) {
    out << "shard-" << kill_shard << " killed after " << kill_after
        << " records; durable state preserved — rerun with the same flags "
           "to resume\n";
    return 2;
  }
  if (report.interrupted) {
    out << "shutdown signal received: shard processes drained, durable "
           "state sealed\n";
    return 0;
  }
  if (!children_clean ||
      (router_proc && router_proc->exit_status(0) != 0)) {
    throw std::runtime_error(
        "a shard process exited non-zero; see logs under " + proc_dir);
  }

  const std::vector<core::Alert> alerts = net::merge_alert_files(alert_files);
  std::unordered_set<std::uint64_t> alerted;
  alerted.reserve(alerts.size());
  for (const auto& alert : alerts) alerted.insert(alert.drive_id);
  core::DriveLevelMetrics drives;
  for (const auto& [drive_id, failed] : report.drive_flags) {
    if (failed) {
      ++drives.faulty_drives;
      if (alerted.count(drive_id)) ++drives.detected_drives;
    } else {
      ++drives.healthy_drives;
      if (alerted.count(drive_id)) ++drives.false_alarm_drives;
    }
  }

  TablePrinter table({"metric", "value"});
  table.add_row(
      {"records submitted", std::to_string(report.records_submitted)});
  if (report.records_skipped > 0) {
    table.add_row({"records resumed past",
                   std::to_string(report.records_skipped)});
  }
  table.add_row({"records processed (fleet)",
                 std::to_string(report.totals.records_processed)});
  table.add_row({"records shed", std::to_string(report.totals.shed)});
  table.add_row({"throughput (rec/s)",
                 format_with_commas(
                     static_cast<long long>(report.records_per_sec))});
  table.add_row({"alerts", std::to_string(alerts.size())});
  table.add_row({"drive-level TPR", format_percent(drives.drive_tpr())});
  table.add_row({"drive-level FPR", format_percent(drives.drive_fpr())});
  table.add_row({"shard processes", std::to_string(processes)});
  table.add_row({"transport", via_router ? "multi-process via router"
                                         : "multi-process direct"});
  table.add_row({"drives tracked", std::to_string(report.drives_tracked)});
  table.add_row({"generation chunks", std::to_string(report.chunks)});
  table.print(out);

  const auto alerts_path = cmd.get("alerts-out", "");
  if (!alerts_path.empty()) {
    write_alerts_file(alerts_path, alerts, out);
  }
  return 0;
}

int cmd_fleet_replay(const CommandLine& cmd, std::ostream& out) {
  apply_simd_flag(cmd);
  // Every count flag is validated before the (potentially multi-million
  // drive) simulation starts.
  const std::size_t shards = get_positive_count(cmd, "shards", 4);
  const std::size_t chunk_drives =
      get_positive_count(cmd, "chunk-drives", 4096);

  auto scenario =
      sim::scenario_by_name(cmd.get("scenario", "fleet"), get_seed(cmd));
  scenario.fleet_scale = cmd.get_number("scale", scenario.fleet_scale);
  sim::FleetSimulator fleet(scenario);

  const auto threads =
      static_cast<std::size_t>(cmd.get_number("threads", 0));
  const auto registry_dir = cmd.get(
      "registry",
      (std::filesystem::temp_directory_path() / "mfpa-fleet-registry")
          .string());
  const bool reuse_registry = cmd.has("reuse-registry");
  if (!reuse_registry) std::filesystem::remove_all(registry_dir);
  out << "simd kernel: " << ml::to_string(ml::active_simd_level()) << "\n";
  serve::ModelRegistry registry(registry_dir, threads, !cmd.has("no-flat"),
                                cmd.has("quantized"));

  // The model trains offline on a down-scaled twin of the scenario (same
  // seed, same catalog, same drift) — training on the full fleet's
  // telemetry would dwarf the serving run this command exists to exercise.
  auto train_config = config_from(cmd);
  int version = registry.current_version();
  if (reuse_registry && version > 0) {
    out << "reusing model v" << version << " from " << registry_dir << "\n";
  } else {
    const double train_scale =
        cmd.get_number("train-scale", std::min(scenario.fleet_scale, 0.02));
    if (train_scale <= 0.0) {
      throw std::invalid_argument("option --train-scale must be > 0");
    }
    auto train_scenario = scenario;
    train_scenario.fleet_scale = train_scale;
    sim::FleetSimulator train_fleet(train_scenario);
    const auto train_telemetry = train_fleet.generate_telemetry(threads);
    const auto train_tickets = train_fleet.tickets();
    version = serve::train_and_publish(registry, train_config,
                                       train_telemetry, train_tickets);
    out << "published " << train_config.algorithm << " v" << version
        << " to " << registry_dir << " (trained at scale "
        << format_double(train_scale, 3) << ")\n";
  }

  if (cmd.has("processes")) {
    // One OS process per shard instead of one router in this process.
    if (cmd.has("in-process")) {
      throw std::invalid_argument(
          "--processes and --in-process are mutually exclusive");
    }
    return run_fleet_multiproc(cmd, out, fleet, registry_dir, version,
                               get_positive_count(cmd, "processes", 4),
                               chunk_drives, threads);
  }

  net::ShardRouter router(
      registry, router_config_from(cmd, train_config, shards, threads));
  report_shard_recovery(router, out);

  net::StreamedFleetOptions options;
  options.chunk_drives = chunk_drives;
  options.generation_threads = threads;
  options.skip_records = router.resume_records();
  options.over_loopback = !cmd.has("in-process");
  options.kill_after_records =
      static_cast<std::size_t>(cmd.get_number("kill-after", 0));
  options.cancel = &g_shutdown_requested;
  g_shutdown_requested = 0;
  std::signal(SIGTERM, handle_shutdown_signal);
  std::signal(SIGINT, handle_shutdown_signal);
  const auto report = net::replay_fleet_streamed(router, fleet, options);
  router.stop();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  if (report.sharded.replay.interrupted) {
    out << "shutdown signal received: queue drained, durable state sealed\n";
  }

  print_replay_table(
      report.sharded.replay,
      {{"shards", std::to_string(router.shard_count())},
       {"transport", options.over_loopback ? "loopback tcp" : "in-process"},
       {"drives tracked", std::to_string(report.drives_tracked)},
       {"generation chunks", std::to_string(report.chunks)},
       {"protocol errors", std::to_string(report.sharded.protocol_errors)}},
      out);
  const auto alerts_path = cmd.get("alerts-out", "");
  if (!alerts_path.empty()) {
    write_alerts_file(alerts_path, report.sharded.replay.alerts, out);
  }
  return 0;
}

int cmd_validate(const CommandLine& cmd, std::ostream& out) {
  const auto robustness = robustness_from(cmd);
  IngestStats ingest;
  const auto telemetry =
      sim::read_telemetry_file(cmd.require("telemetry"), robustness, &ingest);
  report_ingest(ingest, robustness, out);
  const auto report = sim::validate_telemetry(telemetry);
  out << "drives: " << report.drives << "\nrecords: "
      << format_with_commas(static_cast<long long>(report.records))
      << "\ngaps: " << report.gaps_short << " short (2-3d), "
      << report.gaps_medium << " medium (4-9d), " << report.gaps_long
      << " long (>=10d, segment cuts)\nissues: " << report.issues_total
      << (report.clean() ? " — batch is clean\n" : "\n");
  if (!report.issues.empty()) {
    TablePrinter table({"kind", "drive", "day", "detail"});
    for (const auto& issue : report.issues) {
      table.add_row({validation_issue_name(issue.kind),
                     std::to_string(issue.drive_id),
                     std::to_string(issue.day), issue.detail});
    }
    table.print(out);
    if (report.issues_total > report.issues.size()) {
      out << "(showing " << report.issues.size() << " of "
          << report.issues_total << ")\n";
    }
  }
  return report.clean() ? 0 : 2;
}

int cmd_info(const CommandLine& cmd, std::ostream& out) {
  const auto model = ml::load_classifier_file(cmd.require("model"));
  out << "algorithm: " << model->name() << "\nhyperparameters:\n";
  for (const auto& [key, value] : model->hyperparams()) {
    out << "  " << key << " = " << format_double(value, 6) << "\n";
  }
  return 0;
}

int cmd_metrics(std::ostream& out) {
  out << obs::to_prometheus(obs::registry().snapshot());
  return 0;
}

/// Global exporter flags, honored after any successful command:
/// --metrics-out=FILE writes the stable JSON schema, --metrics-dump prints
/// Prometheus text to stdout.
void export_metrics(const CommandLine& cmd, std::ostream& out) {
  const auto path = cmd.get("metrics-out", "");
  if (!path.empty()) {
    obs::write_json_file(path, obs::registry().snapshot());
    out << "wrote metrics to " << path << "\n";
  }
  if (cmd.has("metrics-dump")) {
    out << obs::to_prometheus(obs::registry().snapshot());
  }
}

}  // namespace

std::string CommandLine::get(const std::string& key,
                             const std::string& fallback) const {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

double CommandLine::get_number(const std::string& key, double fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

std::string CommandLine::require(const std::string& key) const {
  const auto it = options.find(key);
  if (it == options.end() || it->second.empty()) {
    throw std::invalid_argument("missing required option --" + key);
  }
  return it->second;
}

CommandLine parse_command_line(const std::vector<std::string>& args) {
  CommandLine cmd;
  if (args.empty()) {
    throw std::invalid_argument("no command given");
  }
  cmd.command = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected argument '" + arg + "'");
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      cmd.options[arg.substr(2)] = "";
    } else {
      cmd.options[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return cmd;
}

std::string usage() {
  return
      "mfpa — multidimensional SSD failure prediction (DATE'23 reproduction)\n"
      "\n"
      "commands:\n"
      "  simulate  --telemetry=FILE --tickets=FILE [--scenario=NAME] [--seed=N]\n"
      "            [--scale=X] [--horizon=DAYS] [--healthy-per-failed=X]\n"
      "            [--no-drift]\n"
      "  train     --telemetry=FILE --tickets=FILE --model=FILE\n"
      "            [--vendor=N] [--group=SFWB|SFW|SFB|SF|S|W|B] [--algorithm=RF]\n"
      "            [--theta=7] [--threshold=0.5] [--seed=N] [--report]\n"
      "  evaluate  --telemetry=FILE --tickets=FILE [--vendor=N] [--group=G] ...\n"
      "  predict   --telemetry=FILE --model=FILE [--group=G] [--threshold=T]\n"
      "            [--top=N] [--explain]\n"
      "  serve-replay  [--telemetry=FILE --tickets=FILE | --scenario=NAME\n"
      "            --seed=N --scale=X] [--algorithm=RF] [--group=G]\n"
      "            [--threads=N] [--batch=256] [--queue-capacity=4096]\n"
      "            [--shed] [--registry=DIR] [--alert-consecutive=1]\n"
      "            [--cooldown=0] [--no-flat] [--quantized]\n"
      "            [--simd=auto|scalar|neon|avx2]\n"
      "            [--durable-dir=DIR] [--wal-group-commit=256]\n"
      "            [--checkpoint-interval=4096] [--reuse-registry]\n"
      "            [--alerts-out=FILE] [--kill-after=N] [--shards=N]\n"
      "            train + publish to the model registry, then stream the\n"
      "            fleet through the micro-batched scoring service\n"
      "            (--shards=N routes drives by id hash across N engine\n"
      "            instances — the sharded serving path; with\n"
      "            --durable-dir each shard logs to DIR/shard-NNN and a\n"
      "            resume must reuse the same --shards; see\n"
      "            docs/SERVING.md)\n"
      "            (--no-flat disables compiled flat-forest inference;\n"
      "            --quantized serves from the uint8-quantized ensemble;\n"
      "            --simd pins the inference kernel tier, degrading to the\n"
      "            strongest the CPU supports and printing what resolved;\n"
      "            scores are identical, see docs/PERFORMANCE.md)\n"
      "            --durable-dir enables the checksummed WAL + checkpoints\n"
      "            and auto-resumes from existing durable state; pair with\n"
      "            --reuse-registry so recovery scores under the same model\n"
      "            (see docs/DURABILITY.md). SIGTERM/SIGINT drain the queue,\n"
      "            seal the durable state, and exit 0. --kill-after raises\n"
      "            SIGKILL mid-stream (crash-recovery testing).\n"
      "  fleet-replay  [--scenario=fleet] [--seed=N] [--scale=X]\n"
      "            [--shards=4] [--chunk-drives=4096] [--train-scale=X]\n"
      "            [--threads=N] [--in-process] [--durable-dir=DIR]\n"
      "            [--registry=DIR] [--reuse-registry] [--alerts-out=FILE]\n"
      "            [--kill-after=N] [--alert-consecutive=1] [--cooldown=0]\n"
      "            [--batch=256] [--queue-capacity=4096] [--shed]\n"
      "            [--no-flat] [--quantized] [--simd=LEVEL]\n"
      "            [--processes=N] [--via-router] [--proc-dir=DIR]\n"
      "            [--kill-shard-after=N] [--kill-shard=K]\n"
      "            stream a (full-scale) fleet scenario through the sharded\n"
      "            scoring service over the loopback binary protocol:\n"
      "            telemetry is generated in chunks of --chunk-drives and\n"
      "            freed after feeding, so memory stays bounded at any\n"
      "            fleet scale; the model trains offline on a --train-scale\n"
      "            twin of the scenario. --in-process skips the TCP hop\n"
      "            (router benchmarking). A durable resume must reuse the\n"
      "            same --shards and --chunk-drives (see docs/SERVING.md).\n"
      "            --processes=N runs the topology as N shard-serve OS\n"
      "            processes fed by a shard-aware client (--via-router adds\n"
      "            a shard-route forwarding process for shard-oblivious\n"
      "            feeds); per-process port files, logs, and alert files\n"
      "            land in --proc-dir, and the children's alert files are\n"
      "            merged into the canonical (day, drive) stream on exit.\n"
      "            --kill-shard-after=N SIGKILLs shard --kill-shard after N\n"
      "            records (exit status 2); rerunning with the same flags\n"
      "            resumes every shard from its own durable state.\n"
      "  shard-serve  --shard-index=K --shard-count=N --registry=DIR\n"
      "            [--port=0] [--port-file=FILE] [--alerts-out=FILE]\n"
      "            [--durable-dir=DIR] [--threads=N] [engine flags]\n"
      "            serve ONE shard of the topology: a require-hello MFNP\n"
      "            endpoint whose durable state lives in DIR/shard-KKK\n"
      "            (identical layout to a single N-shard process). The\n"
      "            registry must already hold a published model. Readiness\n"
      "            is published atomically to --port-file as\n"
      "            \"<port> <resume_records> <model_version>\"; SIGTERM\n"
      "            drains, seals durable state, writes --alerts-out, and\n"
      "            exits 0.\n"
      "  shard-route  --shard-ports=P1,P2,... [--port=0] [--port-file=FILE]\n"
      "            [--model-version=V]\n"
      "            forwarding router for shard-oblivious clients: one MFNP\n"
      "            endpoint fanning records out to the per-shard servers\n"
      "            by the shared drive hash (one extra hop; shard-aware\n"
      "            clients connect to the shards directly instead).\n"
      "  validate  --telemetry=FILE\n"
      "  info      --model=FILE\n"
      "  metrics   print the process metrics registry (Prometheus text)\n"
      "  help\n"
      "\n"
      "observability (any command, see docs/OBSERVABILITY.md):\n"
      "  --metrics-out=FILE  write a mfpa.metrics.v1 JSON snapshot on success\n"
      "  --metrics-dump      print the registry as Prometheus text on exit\n"
      "\n"
      "ingestion modes (train/evaluate/predict/validate, see docs/ROBUSTNESS.md):\n"
      "  --strict   fail fast on the first malformed row, with a line-numbered\n"
      "             diagnostic (default)\n"
      "  --lenient  skip/repair bad rows, quarantine hopeless drives, and print\n"
      "             the ingest-stats summary table\n";
}

int run_command(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  try {
    int rc = -1;
    if (cmd.command == "simulate") rc = cmd_simulate(cmd, out);
    else if (cmd.command == "train") rc = cmd_train(cmd, out);
    else if (cmd.command == "evaluate") rc = cmd_evaluate(cmd, out);
    else if (cmd.command == "predict") rc = cmd_predict(cmd, out);
    else if (cmd.command == "serve-replay") rc = cmd_serve_replay(cmd, out);
    else if (cmd.command == "shard-serve") rc = cmd_shard_serve(cmd, out);
    else if (cmd.command == "shard-route") rc = cmd_shard_route(cmd, out);
    else if (cmd.command == "fleet-replay") rc = cmd_fleet_replay(cmd, out);
    else if (cmd.command == "validate") rc = cmd_validate(cmd, out);
    else if (cmd.command == "info") rc = cmd_info(cmd, out);
    else if (cmd.command == "metrics") rc = cmd_metrics(out);
    else if (cmd.command == "help" || cmd.command == "--help") {
      out << usage();
      rc = 0;
    } else {
      err << "unknown command '" << cmd.command << "'\n" << usage();
      return 1;
    }
    export_metrics(cmd, out);
    return rc;
  } catch (const std::invalid_argument& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    err << "failure: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace mfpa::cli
