// Firmware advisor: Observation #2 in product form. Estimates per-firmware
// failure risk from the fleet and ranks the update recommendations a PC
// manufacturer should push ("most SSDs in the historical dataset remain on
// the fixed firmware rather than update" — the paper's explanation for why
// old firmware keeps failing in the field).
//
//   ./firmware_advisor [scenario] [seed]
#include <cstdlib>
#include <iostream>
#include <map>

#include "common/string_util.hpp"
#include "common/table_printer.hpp"
#include "sim/fleet.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const std::string scenario_name = argc > 1 ? argv[1] : "default";
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  sim::FleetSimulator fleet(sim::scenario_by_name(scenario_name, seed));

  struct FwStats {
    std::size_t drives = 0;
    std::size_t failures = 0;
  };
  std::map<std::pair<int, int>, FwStats> stats;
  for (const auto& d : fleet.drives()) {
    auto& s = stats[{d.vendor, d.firmware_initial}];
    ++s.drives;
    if (d.outcome.fails) ++s.failures;
  }

  const auto& catalog = sim::vendor_catalog();
  std::cout << "=== Firmware risk advisor ===\n\n";
  TablePrinter table({"vendor", "firmware", "drives on it", "failure rate",
                      "vs latest", "recommendation"});
  std::size_t update_candidates = 0;
  for (std::size_t v = 0; v < catalog.size(); ++v) {
    const std::size_t latest = catalog[v].firmware.size() - 1;
    const auto& latest_stats = stats[{static_cast<int>(v),
                                      static_cast<int>(latest)}];
    const double latest_rate =
        latest_stats.drives
            ? static_cast<double>(latest_stats.failures) /
                  static_cast<double>(latest_stats.drives)
            : 0.0;
    for (std::size_t f = 0; f < catalog[v].firmware.size(); ++f) {
      const auto& s = stats[{static_cast<int>(v), static_cast<int>(f)}];
      const double rate =
          s.drives ? static_cast<double>(s.failures) /
                         static_cast<double>(s.drives)
                   : 0.0;
      const double relative = latest_rate > 0 ? rate / latest_rate : 0.0;
      std::string advice = "-";
      if (f < latest) {
        if (relative >= 2.0) {
          advice = "URGENT: push update";
          update_candidates += s.drives;
        } else if (relative >= 1.2) {
          advice = "schedule update";
          update_candidates += s.drives;
        } else {
          advice = "optional";
        }
      } else {
        advice = "latest";
      }
      table.add_row({catalog[v].name, catalog[v].firmware[f].version,
                     format_with_commas(static_cast<long long>(s.drives)),
                     format_percent(rate),
                     latest_rate > 0 ? format_double(relative, 1) + "x" : "n/a",
                     advice});
    }
  }
  table.print(std::cout);
  std::cout << "\nDrives recommended for a firmware update: "
            << format_with_commas(static_cast<long long>(update_candidates))
            << "\nPaper Observation #2: every vendor's earlier firmware fails"
               " more than its later ones; I_F_1/I_F_2 are the worst in the"
               " fleet. Pushing updates is the cheapest fleet-wide"
               " reliability lever.\n";
  return 0;
}
