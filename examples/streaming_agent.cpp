// Streaming agent: what runs *on the consumer machine*. A model trained
// fleet-side is serialized and shipped down; the agent then processes each
// day's telemetry incrementally (StreamingIngestor maintains the cleaned
// state online), scores the newest observation in microseconds, and decides
// locally whether to nag the user to back up.
//
// The replayed uploads pass through a lossy channel (sim::FaultInjector:
// retried uploads, NaN sensor reads), so the ingestor runs in lenient mode
// and reports its IngestStats accounting at the end — the deployed-agent
// configuration described in docs/ROBUSTNESS.md.
//
//   ./streaming_agent [scenario] [seed]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/string_util.hpp"
#include "core/mfpa.hpp"
#include "core/streaming.hpp"
#include "ml/serialize.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fleet.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const std::string scenario_name = argc > 1 ? argv[1] : "small";
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  // --- Fleet side: train and "ship" the model as a byte stream. ----------
  sim::FleetSimulator fleet(sim::scenario_by_name(scenario_name, seed));
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();
  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = seed;
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(telemetry, tickets);
  std::stringstream wire;
  ml::save_classifier(wire, pipeline.model());
  std::cout << "fleet side: trained " << pipeline.model().name() << " (TPR "
            << format_percent(report.cm.tpr()) << ", FPR "
            << format_percent(report.cm.fpr()) << "); model payload "
            << wire.str().size() / 1024 << " KiB\n";

  // --- Client side: receive the model, replay a failing drive day by day.
  const auto model = ml::load_classifier(wire);
  const auto builder = pipeline.make_builder();

  const sim::DriveTimeSeries* failing = nullptr;
  for (const auto& series : telemetry) {
    if (series.vendor == 0 && series.failed && series.records.size() > 20) {
      failing = &series;
      break;
    }
  }
  if (failing == nullptr) {
    std::cout << "no suitable failing drive in this scenario/seed\n";
    return 0;
  }
  std::cout << "client side: replaying drive " << failing->drive_id
            << " (fails on day " << failing->failure_day << " = "
            << format_date(failing->failure_day) << ")\n\n";

  // The channel between agent and scorer is lossy: some uploads are retried
  // after lost ACKs, some sensor reads come back as NaN.
  sim::FaultInjector channel({{{sim::FaultMode::kDuplicateDay, 0.05},
                               {sim::FaultMode::kNanField, 0.02}},
                              seed});
  const auto uploads = channel.corrupt({*failing})[0].records;

  core::PreprocessConfig agent_config;
  agent_config.robustness.mode = IngestMode::kLenient;
  core::StreamingIngestor ingestor(failing->drive_id, failing->vendor,
                                   agent_config);
  DayIndex first_alert = -1;
  double total_us = 0.0;
  std::size_t scored = 0;
  for (const auto& upload : uploads) {
    ingestor.ingest(upload);
    if (!ingestor.usable()) continue;
    const auto& latest = ingestor.segment().back();
    const auto t0 = std::chrono::steady_clock::now();
    data::Matrix row(0, 0);
    row.add_row(builder.features_of(latest));
    const double score = model->predict_proba(row)[0];
    total_us += std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ++scored;
    const bool alert = score >= pipeline.threshold();
    if (alert && first_alert < 0) first_alert = latest.day;
    if (alert || upload.day + 14 >= failing->failure_day) {
      std::cout << "  " << format_date(upload.day) << "  risk "
                << format_double(score, 3) << (alert ? "  << BACK UP NOW" : "")
                << "\n";
    }
  }
  std::cout << "\nfirst alert: "
            << (first_alert >= 0 ? format_date(first_alert) : "(never)")
            << (first_alert >= 0
                    ? " — " + std::to_string(failing->failure_day - first_alert) +
                          " days before the drive died"
                    : "")
            << "\nmean on-device inference: "
            << format_double(total_us / std::max<std::size_t>(1, scored), 1)
            << " us per upload (paper: microsecond-level client-side"
               " prediction)\n"
            << "dirty-channel accounting: " << ingestor.ingest_stats().summary()
            << "\n";
  return 0;
}
