// Streaming scoring service: the fleet-side counterpart of the on-device
// agent. Telemetry uploads arrive day by day over a lossy channel
// (sim::FaultInjector: retried uploads, NaN sensor reads), stream through
// the bounded ingress queue of a serve::ScoringEngine, and are scored in
// micro-batches against whatever model the serve::ModelRegistry currently
// publishes. Halfway through the replay a newly trained model is published
// — the engine hot-swaps between micro-batches without dropping or blocking
// a single in-flight record, which is the whole point of the RCU registry.
//
//   ./streaming_agent [scenario] [seed]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/string_util.hpp"
#include "core/mfpa.hpp"
#include "obs/export.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_engine.hpp"
#include "sim/fault_injector.hpp"
#include "sim/fleet.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const std::string scenario_name = argc > 1 ? argv[1] : "small";
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  sim::FleetSimulator fleet(sim::scenario_by_name(scenario_name, seed));
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();

  // The channel between agents and the service is lossy; the store runs its
  // ingestors in lenient mode and accounts for every repair.
  sim::FaultInjector channel({{{sim::FaultMode::kDuplicateDay, 0.05},
                               {sim::FaultMode::kNanField, 0.02}},
                              seed});
  const auto uploads = channel.corrupt(telemetry);

  const auto registry_dir =
      (std::filesystem::temp_directory_path() / "mfpa-example-registry")
          .string();
  std::filesystem::remove_all(registry_dir);
  serve::ModelRegistry registry(registry_dir);

  // --- Train + publish v1 (RF), and prepare a v2 (GBDT) to ship mid-run. --
  core::MfpaConfig config_v1;
  config_v1.seed = seed;
  const int v1 =
      serve::train_and_publish(registry, config_v1, telemetry, tickets);
  core::MfpaConfig config_v2 = config_v1;
  config_v2.algorithm = "GBDT";
  core::MfpaPipeline pipeline_v2(config_v2);
  const auto report_v2 = pipeline_v2.run(telemetry, tickets);
  std::cout << "fleet side: published "
            << registry.current()->manifest.algorithm << " v" << v1 << " to "
            << registry_dir << "; GBDT standing by (test TPR "
            << format_percent(report_v2.cm.tpr()) << ")\n";

  // --- Service side: replay the lossy upload stream through the engine. --
  serve::EngineConfig engine_config;
  engine_config.store.preprocess.robustness.mode = IngestMode::kLenient;
  engine_config.record_scores = true;  // keep per-version score log
  serve::ScoringEngine engine(registry, engine_config);

  const serve::FleetReplayer replayer(uploads);
  const DayIndex swap_day =
      replayer.first_day() +
      (replayer.last_day() - replayer.first_day()) / 2;
  int v2 = 0;
  const auto report = replayer.replay(engine, [&](DayIndex day) {
    if (v2 == 0 && day >= swap_day) {
      v2 = registry.publish_pipeline(pipeline_v2, 0, day);
      std::cout << "service side: hot-swapped to GBDT v" << v2 << " on "
                << format_date(day) << " (queue keeps draining)\n";
    }
  });
  engine.stop();

  std::size_t scored_v1 = 0, scored_v2 = 0;
  for (const auto& row : engine.take_scored_rows()) {
    (row.model_version == v1 ? scored_v1 : scored_v2) += 1;
  }
  std::cout << "\nreplayed " << report.engine.submitted << " uploads in "
            << format_double(report.wall_seconds, 2) << " s ("
            << format_with_commas(
                   static_cast<long long>(report.records_per_sec))
            << " rec/s), " << report.engine.batches << " micro-batches\n"
            << "rows scored: " << scored_v1 << " on v" << v1 << ", "
            << scored_v2 << " on v" << v2 << " ("
            << report.engine.model_swaps
            << " swap observed; nothing dropped: shed="
            << report.engine.shed << ")\n"
            << "alerts: " << report.engine.alerts << " -> drive-level TPR "
            << format_percent(report.drives.drive_tpr()) << ", FPR "
            << format_percent(report.drives.drive_fpr()) << "\n"
            << "latency p50/p99: "
            << format_double(report.engine.latency_us.quantile(0.5), 0) << "/"
            << format_double(report.engine.latency_us.quantile(0.99), 0)
            << " us\n"
            << "dirty-channel accounting: " << report.store.ingest.summary()
            << "\n";

  // Everything above is also in the process metrics registry — this is what
  // a scrape of the service (or `mfpa metrics`) would see.
  std::cout << "\nprocess metrics registry:\n"
            << obs::to_prometheus(obs::registry().snapshot());
  return 0;
}
