// Quickstart: simulate a consumer-SSD fleet, train MFPA on its telemetry +
// trouble tickets, and print the headline metrics.
//
//   ./quickstart [scenario] [seed]
//     scenario: tiny | small | default | large   (default: small)
//     seed:     any integer                      (default: 42)
#include <cstdlib>
#include <iostream>

#include "common/string_util.hpp"
#include "common/table_printer.hpp"
#include "core/mfpa.hpp"
#include "ml/serialize.hpp"
#include "sim/fleet.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const std::string scenario_name = argc > 1 ? argv[1] : "small";
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  std::cout << "MFPA quickstart — scenario '" << scenario_name << "', seed "
            << seed << "\n";

  // 1. Simulate the fleet (the stand-in for the paper's production CSS).
  sim::FleetSimulator fleet(sim::scenario_by_name(scenario_name, seed));
  const auto summaries = fleet.summarize();
  std::size_t total = 0, failures = 0;
  for (const auto& s : summaries) {
    total += s.total;
    failures += s.failures;
  }
  std::cout << "Fleet: " << format_with_commas(static_cast<long long>(total))
            << " drives, "
            << format_with_commas(static_cast<long long>(failures))
            << " failures within the horizon\n";

  // 2. Collect telemetry and the RaSRF ticket stream.
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();
  std::size_t records = 0;
  for (const auto& t : telemetry) records += t.records.size();
  std::cout << "Telemetry: " << telemetry.size() << " tracked drives, "
            << format_with_commas(static_cast<long long>(records))
            << " daily records; " << tickets.size() << " trouble tickets\n\n";

  // 3. Train and evaluate MFPA (vendor I, SFWB features, random forest).
  core::MfpaConfig config;
  config.vendor = 0;
  config.algorithm = "RF";
  config.group = core::FeatureGroup::kSFWB;
  config.seed = seed;
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(telemetry, tickets);

  TablePrinter table({"metric", "value"});
  table.add_row({"TPR", format_percent(report.cm.tpr())});
  table.add_row({"FPR", format_percent(report.cm.fpr())});
  table.add_row({"ACC", format_percent(report.cm.accuracy())});
  table.add_row({"PDR", format_percent(report.cm.pdr())});
  table.add_row({"AUC", format_percent(report.auc)});
  table.add_row({"train samples", std::to_string(report.train_size)});
  table.add_row({"test samples", std::to_string(report.test_size)});
  table.add_row({"test positives", std::to_string(report.test_positives)});
  table.print(std::cout);

  std::cout << "\nPer-stage timing:\n";
  for (const auto& stage : report.stages) {
    std::cout << "  " << stage.name << ": "
              << format_double(stage.seconds * 1e3, 1) << " ms ("
              << stage.items << " items)\n";
  }

  // 4. Ship the model: serialize, reload, and verify the round trip predicts
  // identically (this is how refreshed models reach client machines).
  const std::string model_path = "mfpa_model.txt";
  ml::save_classifier_file(model_path, pipeline.model());
  const auto restored = ml::load_classifier_file(model_path);
  const std::size_t n_features =
      pipeline.make_builder().feature_names().size();
  data::Matrix probe(8, n_features, 0.0);
  for (std::size_t r = 0; r < probe.rows(); ++r) {
    probe(r, r % n_features) = static_cast<double>(r) * 10.0;
  }
  const bool identical = pipeline.model().predict_proba(probe) ==
                         restored->predict_proba(probe);
  std::cout << "\nModel serialized to " << model_path << " ("
            << restored->name() << "); reload predicts identically: "
            << (identical ? "yes" : "NO — bug!") << "\n";
  return 0;
}
