// Fleet monitoring: the deployment story MFPA enables for consumer machines.
//
// Train MFPA on the first part of the window, then replay the remaining
// telemetry drive by drive through the OnlinePredictor the way a client-side
// agent would: each new upload is scored; crossing the threshold raises a
// backup-and-replace alert. The example then audits the alerts against the
// simulator's ground truth: how many failures were caught, with how much
// advance warning, and how many healthy machines were bothered.
//
//   ./fleet_monitoring [scenario] [seed]
#include <cstdlib>
#include <iostream>
#include <map>

#include "common/string_util.hpp"
#include "common/table_printer.hpp"
#include "core/online_predictor.hpp"
#include "sim/fleet.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const std::string scenario_name = argc > 1 ? argv[1] : "default";
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  sim::FleetSimulator fleet(sim::scenario_by_name(scenario_name, seed));
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();

  // 1. Train the deployed model (vendor I, SFWB).
  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = seed;
  config.train_fraction = 0.6;
  // Deployment tuning: a fleet monitor that cries wolf gets uninstalled, so
  // pick the operating point with a strong false-alarm aversion.
  config.decision_threshold = -1.0;
  config.fpr_weight = 6.0;
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(telemetry, tickets);
  std::cout << "Deployed model: trained through day " << report.split_day
            << ", TPR " << format_percent(report.cm.tpr()) << " / FPR "
            << format_percent(report.cm.fpr()) << " on its test slice\n\n";

  // 2. Replay the post-training period through the online predictor.
  core::OnlinePredictor predictor(pipeline);
  const core::Preprocessor pre;
  std::size_t failing_scored = 0, failing_alerted = 0;
  std::size_t healthy_scored = 0, healthy_alerted = 0;
  std::map<int, std::size_t> lead_time_hist;  // days of warning buckets
  for (const auto& series : telemetry) {
    if (series.vendor != 0) continue;
    auto drive = pre.process_drive(series);
    // Keep only post-training observations (the live period).
    std::erase_if(drive.records, [&](const core::ProcessedRecord& r) {
      return r.day <= report.split_day;
    });
    if (drive.records.size() < 2) continue;
    predictor.clear_alerts();
    predictor.score_drive(drive);
    const bool alerted = !predictor.alerts().empty();
    if (series.failed && series.failure_day > report.split_day) {
      ++failing_scored;
      if (alerted) {
        ++failing_alerted;
        const int lead = series.failure_day - predictor.alerts().front().day;
        ++lead_time_hist[std::clamp(lead / 5 * 5, 0, 30)];
      }
    } else if (!series.failed) {
      ++healthy_scored;
      if (alerted) ++healthy_alerted;
    }
  }

  TablePrinter summary({"metric", "value"});
  summary.add_row({"failing drives in live period", std::to_string(failing_scored)});
  summary.add_row({"caught before failure",
                   std::to_string(failing_alerted) + " (" +
                       format_percent(failing_scored
                                          ? static_cast<double>(failing_alerted) /
                                                static_cast<double>(failing_scored)
                                          : 0.0) +
                       ")"});
  summary.add_row({"healthy drives monitored", std::to_string(healthy_scored)});
  summary.add_row({"healthy drives bothered",
                   std::to_string(healthy_alerted) + " (" +
                       format_percent(healthy_scored
                                          ? static_cast<double>(healthy_alerted) /
                                                static_cast<double>(healthy_scored)
                                          : 0.0) +
                       ")"});
  summary.print(std::cout);

  print_section(std::cout, "Advance warning (days between first alert and failure)");
  TablePrinter leads({"lead time", "drives"});
  for (const auto& [bucket, n] : lead_time_hist) {
    leads.add_row({std::to_string(bucket) + "-" + std::to_string(bucket + 4) + "d",
                   std::to_string(n)});
  }
  leads.print(std::cout);
  std::cout << "\nThe paper's motivation: a few days of warning is enough to"
               " back data up and arrange a replacement before the drive"
               " dies.\n";
  return 0;
}
