// Vendor portability: is a model trained on one vendor's drives usable on
// another's? The paper trains per vendor (Fig. 11/15); this example measures
// both the per-vendor models and the cross-vendor transfer matrix, which
// motivates that choice — SMART semantics and firmware codes differ between
// vendors, so transfer degrades.
//
//   ./vendor_portability [scenario] [seed]
#include <cstdlib>
#include <iostream>

#include "common/string_util.hpp"
#include "common/table_printer.hpp"
#include "core/failure_time.hpp"
#include "core/mfpa.hpp"
#include "core/preprocess.hpp"
#include "ml/metrics.hpp"
#include "sim/fleet.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const std::string scenario_name = argc > 1 ? argv[1] : "default";
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  sim::FleetSimulator fleet(sim::scenario_by_name(scenario_name, seed));
  const auto telemetry = fleet.generate_telemetry();
  const auto tickets = fleet.tickets();

  // Train one pipeline per vendor, remember it, and build each vendor's
  // evaluation dataset with that vendor's own encoder-free features (group S
  // + W + B; firmware codes are vendor-specific and would not transfer).
  std::cout << "Cross-vendor transfer matrix (AUC; model rows x data columns)\n"
            << "feature group: SFWB for the diagonal, S+W+B semantics shared\n\n";

  std::vector<std::unique_ptr<core::MfpaPipeline>> pipelines;
  for (int v = 0; v < 4; ++v) {
    core::MfpaConfig config;
    config.vendor = v;
    config.seed = seed;
    // Use the S group for transfer comparability (firmware label codes are
    // vendor-local; SFWB would not be well-defined across vendors).
    config.group = core::FeatureGroup::kS;
    auto p = std::make_unique<core::MfpaPipeline>(config);
    try {
      p->run(telemetry, tickets);
    } catch (const std::exception& e) {
      std::cout << "vendor " << v << ": training failed (" << e.what() << ")\n";
      p.reset();
    }
    pipelines.push_back(std::move(p));
  }

  // Per-vendor evaluation datasets (canonical labeling).
  const core::Preprocessor pre;
  const core::FailureTimeIdentifier identifier(7);
  std::vector<data::Dataset> eval_sets;
  for (int v = 0; v < 4; ++v) {
    std::vector<sim::DriveTimeSeries> vendor_series;
    for (const auto& s : telemetry) {
      if (s.vendor == v) vendor_series.push_back(s);
    }
    const auto drives = pre.process(vendor_series);
    const auto failures = identifier.identify_all(tickets, drives);
    core::SampleConfig sc;
    sc.group = core::FeatureGroup::kS;
    sc.seed = seed;
    const core::SampleBuilder builder(sc, nullptr);
    eval_sets.push_back(builder.build(drives, failures));
  }

  const auto& names = sim::vendor_catalog();
  TablePrinter matrix({"model \\ data", names[0].name, names[1].name,
                       names[2].name, names[3].name});
  for (int m = 0; m < 4; ++m) {
    std::vector<std::string> row{"trained on " + names[static_cast<std::size_t>(m)].name};
    for (int d = 0; d < 4; ++d) {
      if (!pipelines[static_cast<std::size_t>(m)] ||
          eval_sets[static_cast<std::size_t>(d)].positives() == 0) {
        row.push_back("n/a");
        continue;
      }
      const auto& ds = eval_sets[static_cast<std::size_t>(d)];
      const auto scores = pipelines[static_cast<std::size_t>(m)]->score(ds);
      row.push_back(format_percent(ml::auc(ds.y, scores)));
    }
    matrix.add_row(row);
  }
  matrix.print(std::cout);
  std::cout << "\nReading: diagonal entries (own-vendor) should dominate the"
               " off-diagonal transfer entries — the reason the paper trains"
               " per vendor rather than one global model.\n"
               "(In-vendor numbers here are optimistic: the scoring set"
               " overlaps each model's training period; Fig. 11/15 report"
               " the honest held-out values.)\n";
  return 0;
}
