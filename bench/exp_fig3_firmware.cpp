// Fig. 3 reproduction: per-firmware-version failure rates. Observation #2:
// "the earlier the firmware version, the higher the failure rate."
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "sim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  sim::FleetSimulator fleet(sim::scenario_by_name(args.scenario, args.seed));

  std::cout << "=== Fig. 3: failure rate per firmware version ===\n\n";
  // (vendor, fw) -> (fails, total)
  std::map<std::pair<int, int>, std::pair<std::size_t, std::size_t>> by_fw;
  for (const auto& d : fleet.drives()) {
    auto& [fails, total] = by_fw[{d.vendor, d.firmware_initial}];
    ++total;
    if (d.outcome.fails) ++fails;
  }

  TablePrinter table({"FirmwareVersion", "drives", "failures",
                      "failure rate (measured)", "hazard mult (config)", "bar"});
  const auto& catalog = sim::vendor_catalog();
  bool monotone = true;
  for (std::size_t v = 0; v < catalog.size(); ++v) {
    double prev_rate = 1e9;
    for (std::size_t f = 0; f < catalog[v].firmware.size(); ++f) {
      const auto& [fails, total] = by_fw[{static_cast<int>(v),
                                          static_cast<int>(f)}];
      const double rate =
          total ? static_cast<double>(fails) / static_cast<double>(total) : 0.0;
      if (rate > prev_rate + 1e-9) monotone = false;
      prev_rate = rate;
      table.add_row({catalog[v].firmware[f].version, std::to_string(total),
                     std::to_string(fails), format_percent(rate),
                     format_double(catalog[v].firmware[f].failure_multiplier, 2),
                     std::string(static_cast<std::size_t>(rate * 2500.0), '#')});
    }
  }
  table.print(std::cout);
  std::cout << "\nEarlier-firmware-fails-more monotone per vendor: "
            << (monotone ? "yes" : "no (sampling noise at this scale)")
            << "\nPaper: I_F_1/I_F_2 worst for vendor I; every vendor's later"
               " firmware beats its earlier ones.\n";
  return 0;
}
