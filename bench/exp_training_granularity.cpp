// Extension experiment: vendor-level vs drive-model-level training. The
// paper states "We train the prediction model based on vendors rather than
// the traditional model based on disk series" — this ablation shows why:
// splitting vendor I's failures across its four models starves each
// per-model dataset of positives.
#include <iostream>

#include "bench_common.hpp"
#include "sim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Vendor-level vs model-level training ===");

  // Vendor-level model (the paper's choice).
  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = args.seed;
  TablePrinter table({"training unit", "faulty drives", "TPR", "FPR", "AUC"});
  {
    core::MfpaPipeline pipeline(config);
    const auto report = pipeline.run(world.telemetry, world.tickets);
    std::size_t faulty = 0;
    for (const auto& s : world.telemetry) {
      if (s.vendor == 0 && s.failed) ++faulty;
    }
    table.add_row({"vendor I (paper)", std::to_string(faulty),
                   format_percent(report.cm.tpr()),
                   format_percent(report.cm.fpr()),
                   format_percent(report.auc)});
  }

  // Per-drive-model training: one pipeline per model of vendor I.
  const auto& vendor = sim::vendor_catalog()[0];
  for (std::size_t m = 0; m < vendor.models.size(); ++m) {
    std::vector<sim::DriveTimeSeries> model_series;
    std::size_t faulty = 0;
    for (const auto& s : world.telemetry) {
      if (s.vendor != 0 || s.model != static_cast<int>(m)) continue;
      model_series.push_back(s);
      if (s.failed) ++faulty;
    }
    std::vector<std::string> row{vendor.models[m].name, std::to_string(faulty)};
    try {
      core::MfpaPipeline pipeline(config);
      const auto report = pipeline.run(model_series, world.tickets);
      row.push_back(format_percent(report.cm.tpr()));
      row.push_back(format_percent(report.cm.fpr()));
      row.push_back(format_percent(report.auc));
    } catch (const std::exception& e) {
      row.push_back("n/a");
      row.push_back("n/a");
      row.push_back(std::string("(") + e.what() + ")");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nPer-model datasets carve ~"
            << vendor.models.size()
            << "-way through the same failures; the vendor-level model sees"
               " them all — the reason the paper trains per vendor.\n";
  return 0;
}
