// Extension experiment: probability quality. The random forest's vote
// fraction ranks drives superbly (AUC ~0.999) but is not a trustworthy
// probability; when thresholds price migrations (exp_cost_analysis) the
// numbers themselves matter. This harness shows the reliability curve of
// the raw scores and after isotonic calibration on the validation slice.
#include <iostream>

#include "bench_common.hpp"
#include "ml/calibration.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Probability calibration (isotonic) ===");

  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = args.seed;
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(world.telemetry, world.tickets);

  // Interleaved split of the test slice (samples arrive positives-first, so
  // a contiguous half would be single-class): even indices fit the
  // calibrator, odd indices evaluate it.
  std::vector<double> fit_scores, eval_scores;
  std::vector<int> fit_labels, eval_labels;
  for (std::size_t i = 0; i < report.test_scores.size(); ++i) {
    if (i % 2 == 0) {
      fit_scores.push_back(report.test_scores[i]);
      fit_labels.push_back(report.test_labels[i]);
    } else {
      eval_scores.push_back(report.test_scores[i]);
      eval_labels.push_back(report.test_labels[i]);
    }
  }

  ml::IsotonicCalibrator calibrator;
  calibrator.fit(fit_scores, fit_labels);
  const auto calibrated = calibrator.transform(eval_scores);

  std::cout << "Brier score: raw "
            << format_double(ml::brier_score(eval_labels, eval_scores), 4)
            << " -> calibrated "
            << format_double(ml::brier_score(eval_labels, calibrated), 4)
            << "   (AUC unchanged: "
            << format_percent(ml::auc(eval_labels, eval_scores)) << " vs "
            << format_percent(ml::auc(eval_labels, calibrated)) << ")\n";

  for (const bool use_calibrated : {false, true}) {
    print_section(std::cout, use_calibrated ? "Reliability (calibrated)"
                                            : "Reliability (raw RF votes)");
    TablePrinter table({"predicted bin", "samples", "mean predicted",
                        "observed failure rate"});
    const auto& scores = use_calibrated ? calibrated : eval_scores;
    for (const auto& bin : ml::reliability_curve(scores, eval_labels, 10)) {
      if (bin.count == 0) continue;
      table.add_row({format_double(bin.mean_score, 2),
                     std::to_string(bin.count),
                     format_percent(bin.mean_score),
                     format_percent(bin.observed_rate)});
    }
    table.print(std::cout);
  }
  std::cout << "\nReading: after calibration the two right-hand columns"
               " should track each other; ranking (AUC) is untouched because"
               " the isotonic map is monotone.\n";
  return 0;
}
