// Figs. 9 & 13 reproduction: MFPA (random forest, vendor I) across the seven
// feature groups of Table V. Headline: SFWB reaches ~98% TPR at sub-1% FPR;
// SMART-only and SF trail it on both axes. Includes the Table V definition
// and a negative-sampling-ratio ablation.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Figs. 9/13: feature-group comparison ===");

  print_section(std::cout, "Table V: feature groups");
  TablePrinter groups({"group", "SMART", "Firmware", "WindowsEvent",
                       "BlueScreenofDeath", "total"});
  for (core::FeatureGroup g : core::all_feature_groups()) {
    const auto names = core::feature_names_of(g);
    std::size_t s = 0, f = 0, w = 0, b = 0;
    for (const auto& n : names) {
      if (n[0] == 'S') ++s;
      else if (n == "F") ++f;
      else if (n[0] == 'W') ++w;
      else ++b;
    }
    auto cell = [](std::size_t n) { return n ? std::to_string(n) : "NaN"; };
    groups.add_row({core::feature_group_name(g), cell(s), cell(f), cell(w),
                    cell(b), std::to_string(names.size())});
  }
  groups.print(std::cout);

  print_section(std::cout, "MFPA per feature group (RF, vendor I)");
  TablePrinter table({"group", "TPR", "FPR", "ACC", "PDR", "AUC",
                      "test pos", "test neg"});
  core::MfpaReport sfwb_report, s_report;
  for (core::FeatureGroup g : core::all_feature_groups()) {
    core::MfpaConfig config;
    config.vendor = 0;
    config.group = g;
    config.seed = args.seed;
    core::MfpaPipeline pipeline(config);
    const auto report = pipeline.run(world.telemetry, world.tickets);
    if (g == core::FeatureGroup::kSFWB) sfwb_report = report;
    if (g == core::FeatureGroup::kS) s_report = report;
    std::vector<std::string> row{core::feature_group_name(g)};
    for (const auto& cell : bench::metric_cells(report)) row.push_back(cell);
    row.push_back(std::to_string(report.test_positives));
    row.push_back(std::to_string(report.test_size - report.test_positives));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nPaper: SFWB 98.18% TPR / 0.56% FPR; SF 95.37% / 3.58%;"
               " the SMART-based model trails SFWB by ~4% TPR with ~7x FPR.\n"
            << "Measured headline gap: TPR "
            << format_percent(sfwb_report.cm.tpr()) << " vs "
            << format_percent(s_report.cm.tpr()) << ", FPR "
            << format_percent(sfwb_report.cm.fpr()) << " vs "
            << format_percent(s_report.cm.fpr()) << "\n";

  print_section(std::cout, "Extension: rate-of-change (delta) features");
  TablePrinter delta_table({"features", "TPR", "FPR", "ACC", "PDR", "AUC"});
  for (const bool deltas : {false, true}) {
    core::MfpaConfig config;
    config.vendor = 0;
    config.seed = args.seed;
    config.include_deltas = deltas;
    core::MfpaPipeline pipeline(config);
    const auto report = pipeline.run(world.telemetry, world.tickets);
    std::vector<std::string> row{deltas ? "SFWB + 7-day deltas (90 cols)"
                                        : "SFWB (45 cols, paper)"};
    for (const auto& cell : bench::metric_cells(report)) row.push_back(cell);
    delta_table.add_row(row);
  }
  delta_table.print(std::cout);
  std::cout << "(counters *accelerating* carries signal beyond their level;"
               " a candidate improvement over the paper's raw features)\n";

  print_section(std::cout, "Ablation: negative:positive sampling ratio");
  TablePrinter ratio_table({"neg:pos", "TPR", "FPR", "ACC", "PDR", "AUC"});
  for (double ratio : {3.0, 5.0}) {
    core::MfpaConfig config;
    config.vendor = 0;
    config.seed = args.seed;
    config.neg_per_pos = ratio;
    config.undersample_ratio = ratio;
    core::MfpaPipeline pipeline(config);
    const auto report = pipeline.run(world.telemetry, world.tickets);
    std::vector<std::string> row{format_double(ratio, 0) + ":1"};
    for (const auto& cell : bench::metric_cells(report)) row.push_back(cell);
    ratio_table.add_row(row);
  }
  ratio_table.print(std::cout);
  std::cout << "(paper trains at 3:1 or 5:1; results should be stable)\n";
  return 0;
}
