// google-benchmark micro-benchmarks for the hot kernels behind Fig. 20:
// tree-ensemble training/inference (exact vs histogram split paths),
// feature binning, metric computation, preprocessing throughput, and the
// CNN_LSTM forward pass. `cmake --build build --target bench_perf` runs the
// suite and records BENCH_ml_kernels.json (see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/preprocess.hpp"
#include "data/binned_matrix.hpp"
#include "ml/factory.hpp"
#include "ml/flat_forest.hpp"
#include "ml/metrics.hpp"
#include "ml/quantized_forest.hpp"
#include "ml/simd.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace mfpa;

std::pair<data::Matrix, std::vector<int>> blob_data(std::size_t n,
                                                    std::size_t d) {
  Rng rng(1);
  data::Matrix X(n, d);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i % 4 == 0 ? 1 : 0;
    y[i] = label;
    for (std::size_t c = 0; c < d; ++c) {
      X(i, c) = rng.normal(label * 2.0, 1.0);
    }
  }
  return {std::move(X), std::move(y)};
}

// range(0) = rows, range(1) = split_method (0 exact, 1 hist).
void BM_RandomForestFit(benchmark::State& state) {
  const auto [X, y] = blob_data(static_cast<std::size_t>(state.range(0)), 45);
  const double method = static_cast<double>(state.range(1));
  for (auto _ : state) {
    auto rf = ml::make_classifier(
        "RF", {{"n_trees", 30}, {"seed", 1}, {"split_method", method}});
    rf->fit(X, y);
    benchmark::DoNotOptimize(rf);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RandomForestFit)
    ->ArgNames({"n", "hist"})
    ->ArgsProduct({{1000, 4000}, {0, 1}});

void BM_RandomForestPredict(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  const double threads = static_cast<double>(state.range(0));
  auto rf = ml::make_classifier(
      "RF", {{"n_trees", 60}, {"seed", 1}, {"threads", threads}});
  rf->fit(X, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf->predict_proba(X));
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_RandomForestPredict)->ArgName("threads")->Arg(1)->Arg(0);

// range(0) = rows, range(1) = split_method (0 exact, 1 hist).
void BM_GbdtFit(benchmark::State& state) {
  const auto [X, y] = blob_data(static_cast<std::size_t>(state.range(0)), 45);
  const double method = static_cast<double>(state.range(1));
  for (auto _ : state) {
    auto gbdt = ml::make_classifier(
        "GBDT", {{"n_rounds", 40}, {"seed", 1}, {"split_method", method}});
    gbdt->fit(X, y);
    benchmark::DoNotOptimize(gbdt);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbdtFit)
    ->ArgNames({"n", "hist"})
    ->ArgsProduct({{2000, 4000}, {0, 1}});

void BM_GbdtPredict(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  const double threads = static_cast<double>(state.range(0));
  auto gbdt = ml::make_classifier(
      "GBDT", {{"n_rounds", 80}, {"seed", 1}, {"threads", threads}});
  gbdt->fit(X, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbdt->predict_proba(X));
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_GbdtPredict)->ArgName("threads")->Arg(1)->Arg(0);

// Compiled (flat-forest) vs node-pointer ensemble scoring, single thread.
// range(0) = flat (0 pointer path, 1 compiled); 100-tree paper-scale RF.
// The perf-regression gate tracks both: the pair documents the compiled
// path's speedup and bench_compare.py fails CI when either regresses.
void BM_FlatForestPredictRF(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  auto rf = ml::make_classifier(
      "RF", {{"n_trees", 100}, {"seed", 1}, {"threads", 1}});
  rf->fit(X, y);
  if (state.range(0) != 0) {
    dynamic_cast<ml::CompiledInference&>(*rf).compile();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf->predict_proba(X));
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_FlatForestPredictRF)->ArgName("flat")->Arg(0)->Arg(1);

// Same A/B for the boosted ensemble (100 rounds, depth-5 trees).
void BM_FlatForestPredictGbdt(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  auto gbdt = ml::make_classifier(
      "GBDT", {{"n_rounds", 100}, {"seed", 1}, {"threads", 1}});
  gbdt->fit(X, y);
  if (state.range(0) != 0) {
    dynamic_cast<ml::CompiledInference&>(*gbdt).compile();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbdt->predict_proba(X));
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_FlatForestPredictGbdt)->ArgName("flat")->Arg(0)->Arg(1);

// Kernel-tier A/B on the compiled path: range(0) = SimdLevel forced via the
// process-wide override (0 scalar, 2 avx2/auto). The scalar leg pins the
// portable kernel, the vector leg runs whatever the CPU dispatches; the
// perf gate's scalar-vs-vector ratio documents the SIMD speedup (results
// are bit-identical across legs — see tests/ml/test_simd_parity.cpp).
void BM_FlatForestPredictSimdRF(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  auto rf = ml::make_classifier(
      "RF", {{"n_trees", 100}, {"seed", 1}, {"threads", 1}});
  rf->fit(X, y);
  dynamic_cast<ml::CompiledInference&>(*rf).compile();
  ml::set_simd_override(state.range(0) == 0
                            ? std::optional<ml::SimdLevel>(ml::SimdLevel::kScalar)
                            : std::nullopt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf->predict_proba(X));
  }
  ml::set_simd_override(std::nullopt);
  state.SetItemsProcessed(state.iterations() * 4000);
  state.SetLabel(std::string(ml::to_string(
      state.range(0) == 0 ? ml::SimdLevel::kScalar
                          : ml::detected_simd_level())));
}
BENCHMARK(BM_FlatForestPredictSimdRF)->ArgName("simd")->Arg(0)->Arg(2);

void BM_FlatForestPredictSimdGbdt(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  auto gbdt = ml::make_classifier(
      "GBDT", {{"n_rounds", 100}, {"seed", 1}, {"threads", 1}});
  gbdt->fit(X, y);
  dynamic_cast<ml::CompiledInference&>(*gbdt).compile();
  ml::set_simd_override(state.range(0) == 0
                            ? std::optional<ml::SimdLevel>(ml::SimdLevel::kScalar)
                            : std::nullopt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbdt->predict_proba(X));
  }
  ml::set_simd_override(std::nullopt);
  state.SetItemsProcessed(state.iterations() * 4000);
  state.SetLabel(std::string(ml::to_string(
      state.range(0) == 0 ? ml::SimdLevel::kScalar
                          : ml::detected_simd_level())));
}
BENCHMARK(BM_FlatForestPredictSimdGbdt)->ArgName("simd")->Arg(0)->Arg(2);

// Quantized (uint8-code) vs float compiled scoring, single thread. The
// quantized path encodes each row block to codes and walks 9-byte nodes;
// probabilities are bit-identical (cuts derive from the model's own
// thresholds; see ml/quantized_forest.hpp).
void BM_QuantizedPredictRF(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  auto rf = ml::make_classifier(
      "RF", {{"n_trees", 100}, {"seed", 1}, {"threads", 1}});
  rf->fit(X, y);
  auto& compilable = dynamic_cast<ml::CompiledInference&>(*rf);
  if (!compilable.compile_quantized()) {
    state.SkipWithError("ensemble not quantizable");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf->predict_proba(X));
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_QuantizedPredictRF);

void BM_QuantizedPredictGbdt(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  auto gbdt = ml::make_classifier(
      "GBDT", {{"n_rounds", 100}, {"seed", 1}, {"threads", 1}});
  gbdt->fit(X, y);
  auto& compilable = dynamic_cast<ml::CompiledInference&>(*gbdt);
  if (!compilable.compile_quantized()) {
    state.SkipWithError("ensemble not quantizable");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbdt->predict_proba(X));
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_QuantizedPredictGbdt);

// One-off cost of quantizing a 100-tree forest (paid once per model
// activation when the registry runs with quantize_models).
void BM_QuantizedCompile(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  auto rf = ml::make_classifier(
      "RF", {{"n_trees", 100}, {"seed", 1}, {"threads", 1}});
  rf->fit(X, y);
  auto& compilable = dynamic_cast<ml::CompiledInference&>(*rf);
  for (auto _ : state) {
    compilable.compile_quantized();
    benchmark::DoNotOptimize(compilable.quantized());
  }
}
BENCHMARK(BM_QuantizedCompile);

// One-off cost of flattening a 100-tree forest (paid once per model
// activation in the serving tier; see docs/PERFORMANCE.md amortization).
void BM_FlatForestCompile(benchmark::State& state) {
  const auto [X, y] = blob_data(4000, 45);
  auto rf = ml::make_classifier(
      "RF", {{"n_trees", 100}, {"seed", 1}, {"threads", 1}});
  rf->fit(X, y);
  auto& compilable = dynamic_cast<ml::CompiledInference&>(*rf);
  for (auto _ : state) {
    compilable.compile();
    benchmark::DoNotOptimize(compilable.flat());
  }
}
BENCHMARK(BM_FlatForestCompile);

void BM_BinnedMatrixBuild(benchmark::State& state) {
  const auto [X, y] = blob_data(static_cast<std::size_t>(state.range(0)), 45);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::BinnedMatrix(X));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 45);
}
BENCHMARK(BM_BinnedMatrixBuild)->ArgName("n")->Arg(4000)->Arg(16000);

void BM_CnnLstmForward(benchmark::State& state) {
  const auto [X, y] = blob_data(512, 45 * 5);
  auto net = ml::make_classifier(
      "CNN_LSTM",
      {{"timesteps", 5}, {"epochs", 1}, {"channels", 16}, {"hidden", 24}});
  net->fit(X, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->predict_proba(X));
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_CnnLstmForward);

void BM_AucComputation(benchmark::State& state) {
  Rng rng(2);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<int> y(n);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.bernoulli(0.25) ? 1 : 0;
    scores[i] = rng.uniform() + y[i] * 0.3;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::auc(y, scores));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AucComputation)->Arg(10000)->Arg(100000);

void BM_PreprocessTelemetry(benchmark::State& state) {
  sim::FleetSimulator fleet(sim::tiny_scenario(1));
  const auto telemetry = fleet.generate_telemetry();
  std::size_t records = 0;
  for (const auto& t : telemetry) records += t.records.size();
  const core::Preprocessor pre;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pre.process(telemetry));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records));
}
BENCHMARK(BM_PreprocessTelemetry);

void BM_TelemetryGeneration(benchmark::State& state) {
  for (auto _ : state) {
    sim::FleetSimulator fleet(sim::tiny_scenario(1));
    benchmark::DoNotOptimize(fleet.generate_telemetry());
  }
}
BENCHMARK(BM_TelemetryGeneration);

}  // namespace

BENCHMARK_MAIN();
