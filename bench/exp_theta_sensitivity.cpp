// Sensitivity of the failure-time identification threshold theta
// (paper §III-C(2)): too high and pre-failure windows overlap healthy-looking
// data (FPR up / labels diluted); too low and faulty drives lack data around
// the labeled day (TPR down). The paper settles on theta = 7.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args, "=== theta sensitivity test ===");

  TablePrinter table({"theta", "train pos", "test pos", "TPR", "FPR", "AUC"});
  for (int theta : {0, 1, 3, 5, 7, 10, 14, 21}) {
    core::MfpaConfig config;
    config.vendor = 0;
    config.seed = args.seed;
    config.theta = theta;
    std::vector<std::string> row{std::to_string(theta)};
    try {
      core::MfpaPipeline pipeline(config);
      const auto report = pipeline.run(world.telemetry, world.tickets);
      row.push_back(std::to_string(report.train_positives));
      row.push_back(std::to_string(report.test_positives));
      row.push_back(format_percent(report.cm.tpr()));
      row.push_back(format_percent(report.cm.fpr()));
      row.push_back(format_percent(report.auc));
    } catch (const std::exception&) {
      for (int i = 0; i < 5; ++i) row.push_back("n/a");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nPaper: theta = 7 balances the two failure modes; labeling"
               " at the IMT (theta = 0) anchors windows after the data ends,"
               " and very large theta mislabels healthy-looking days.\n";
  return 0;
}
