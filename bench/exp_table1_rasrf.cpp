// Table I reproduction: RaSRF (Replaced-as-SSD-Related-Failures) category
// breakdown from the simulated trouble-ticket stream, and — for traceability
// — the tracked SMART attributes (Table II).
#include <array>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "sim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args, "=== Table I: RaSRF breakdown ===");

  std::map<sim::TicketCategory, std::size_t> counts;
  for (const auto& t : world.tickets) ++counts[t.category];
  const double total = static_cast<double>(world.tickets.size());

  TablePrinter table(
      {"Failure Level", "Category", "Causes", "Pct. (measured)", "Pct. (paper)"});
  double drive_level = 0.0, system_level = 0.0;
  for (const auto& info : sim::ticket_categories()) {
    const double measured =
        total > 0 ? static_cast<double>(counts[info.category]) / total : 0.0;
    (info.level == sim::FailureLevel::kDriveLevel ? drive_level
                                                  : system_level) += measured;
    table.add_row({info.level == sim::FailureLevel::kDriveLevel
                       ? "Drive Level"
                       : "System Level",
                   info.group, info.description, format_percent(measured),
                   format_percent(info.fraction)});
  }
  table.print(std::cout);
  std::cout << "\nDrive-level total:  " << format_percent(drive_level)
            << "  (paper: 31.62%)\n"
            << "System-level total: " << format_percent(system_level)
            << "  (paper: 68.38%)\n";

  print_section(std::cout, "Table II: tracked SMART attributes");
  TablePrinter smart({"ID#", "Attribute Name"});
  for (std::size_t i = 0; i < sim::kNumSmartAttrs; ++i) {
    smart.add_row({sim::smart_attr_names()[i], sim::smart_attr_descriptions()[i]});
  }
  smart.print(std::cout);
  return 0;
}
