// Figs. 6-7 reproduction: (6) the discontinuity of consumer telemetry —
// observation-gap distribution and faulty-drive counts per interval bucket —
// with an ablation of the gap-repair policy; (7) failure-time identification
// quality: how close the theta-labeled failure day lands to the simulator's
// ground truth.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/failure_time.hpp"
#include "core/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Fig. 6: data discontinuity in CSS ===");

  // Gap distribution over raw (pre-repair) faulty vendor-I series.
  std::map<int, std::size_t> gap_hist;
  std::size_t faulty_drives = 0;
  for (const auto& series : world.telemetry) {
    if (series.vendor != 0 || !series.failed) continue;
    ++faulty_drives;
    for (std::size_t i = 1; i < series.records.size(); ++i) {
      const int gap = series.records[i].day - series.records[i - 1].day;
      ++gap_hist[std::min(gap, 15)];
    }
  }
  TablePrinter gaps({"interval (days)", "occurrences", "bar"});
  for (const auto& [gap, n] : gap_hist) {
    gaps.add_row({gap == 15 ? ">=15" : std::to_string(gap), std::to_string(n),
                  std::string(std::min<std::size_t>(n / 20, 60), '#')});
  }
  gaps.print(std::cout);
  std::cout << "faulty vendor-I drives tracked: " << faulty_drives
            << " (paper Fig. 6: 23-77 faulty drives per interval bucket)\n";

  print_section(std::cout, "Gap-policy ablation (drop_gap / fill_gap)");
  TablePrinter policy({"drop_gap", "fill_gap", "drives kept", "records kept",
                       "records filled", "records dropped"});
  for (const auto& [drop, fill] :
       std::vector<std::pair<int, int>>{{10, 3}, {10, 1}, {5, 3}, {20, 3},
                                        {10, 7}}) {
    core::PreprocessConfig cfg;
    cfg.drop_gap = drop;
    cfg.fill_gap = fill;
    core::PreprocessStats stats;
    core::Preprocessor(cfg).process(world.telemetry, &stats);
    policy.add_row({std::to_string(drop), std::to_string(fill),
                    std::to_string(stats.drives_out),
                    std::to_string(stats.records_out),
                    std::to_string(stats.records_filled),
                    std::to_string(stats.records_dropped)});
  }
  policy.print(std::cout);
  std::cout << "(paper setting: drop at >=10, fill at <=3)\n";

  print_section(std::cout, "Fig. 7: failure-time identification (theta = 7)");
  const core::Preprocessor pre;
  const auto drives = pre.process(world.telemetry);
  const core::FailureTimeIdentifier identifier(7);
  const auto failures = identifier.identify_all(world.tickets, drives);
  std::map<std::uint64_t, DayIndex> truth;
  for (const auto& d : drives) {
    if (d.failed) truth[d.drive_id] = d.failure_day;
  }
  std::map<int, std::size_t> error_hist;
  std::size_t anchored = 0;
  for (const auto& [id, f] : failures) {
    const auto it = truth.find(id);
    if (it == truth.end()) continue;
    ++error_hist[std::clamp(f.labeled_failure_day - it->second, -10, 10)];
    anchored += f.anchored_to_record;
  }
  TablePrinter err({"labeled - actual (days)", "drives"});
  for (const auto& [e, n] : error_hist) {
    std::string label = std::to_string(e);
    if (e == -10) label = "<=-10";
    if (e == 10) label = ">=10";
    err.add_row({label, std::to_string(n)});
  }
  err.print(std::cout);
  std::cout << "labeled drives: " << failures.size() << ", anchored to a "
            << "tracking point: " << anchored << " ("
            << format_percent(failures.empty()
                                  ? 0.0
                                  : static_cast<double>(anchored) /
                                        static_cast<double>(failures.size()))
            << ")\n"
            << "Paper: with ti <= theta the closest Pt_d is the failure day;"
               " otherwise IMT - theta.\n";
  return 0;
}
