// Hyperparameter optimization (paper §III-C(4)): grid search combined with
// time-series cross-validation, per algorithm. Prints the grid, the best
// point, and the spread between the worst and best grid scores (how much
// tuning matters for each algorithm family).
#include <iostream>

#include "bench_common.hpp"
#include "core/failure_time.hpp"
#include "core/preprocess.hpp"
#include "ml/grid_search.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(
      world, args, "=== Grid search + time-series CV (paper III-C(4)) ===");

  // Build the SFWB training matrix once (vendor I, chronologically sorted).
  std::vector<sim::DriveTimeSeries> vendor0;
  for (const auto& s : world.telemetry) {
    if (s.vendor == 0) vendor0.push_back(s);
  }
  const core::Preprocessor pre;
  const auto drives = pre.process(vendor0);
  const auto encoder = core::Preprocessor::fit_firmware_encoder(drives);
  const core::FailureTimeIdentifier identifier(7);
  const auto failures = identifier.identify_all(world.tickets, drives);
  core::SampleConfig sc;
  sc.group = core::FeatureGroup::kSFWB;
  sc.seed = args.seed;
  const core::SampleBuilder builder(sc, &encoder);
  const auto ds = builder.build(drives, failures).sorted_by_time();
  const auto splits = ml::time_series_splits(ds.size(), 3);
  std::cout << "samples=" << ds.size() << " positives=" << ds.positives()
            << " folds=3 (chronological)\n\n";

  struct Job {
    std::string algorithm;
    ml::Hyperparams base;
    ml::ParamGrid grid;
  };
  const std::vector<Job> jobs = {
      {"RF",
       {{"seed", 1}},
       {{"n_trees", {20, 60}}, {"max_depth", {8, 14}}, {"max_features", {0, -1}}}},
      {"GBDT",
       {{"seed", 1}},
       {{"n_rounds", {30, 80}}, {"learning_rate", {0.1, 0.3}}, {"max_depth", {3, 5}}}},
      {"SVM", {{"seed", 1}, {"epochs", 10}}, {{"lambda", {1e-5, 1e-4, 1e-3}}}},
      {"Bayes", {}, {{"var_smoothing", {1e-9, 1e-6, 1e-3}}}},
  };

  TablePrinter table({"algorithm", "grid points", "best CV AUC", "worst CV AUC",
                      "best params"});
  for (const auto& job : jobs) {
    const auto result = ml::grid_search(job.algorithm, job.base, job.grid,
                                        ds.X, ds.y, splits);
    double worst = 1.0;
    for (const auto& [params, score] : result.all) {
      worst = std::min(worst, score);
    }
    std::string best;
    for (const auto& [key, value] : result.best_params) {
      if (key == "seed" || key == "epochs") continue;
      if (!best.empty()) best += ", ";
      best += key + "=" + format_double(value, value < 0.01 ? 6 : 1);
    }
    table.add_row({job.algorithm, std::to_string(result.all.size()),
                   format_double(result.best_score, 4),
                   format_double(worst, 4), best});
  }
  table.print(std::cout);
  std::cout << "\nThe tuned defaults in ml::default_hyperparams() came from"
               " this sweep at the default scenario scale.\n";
  return 0;
}
