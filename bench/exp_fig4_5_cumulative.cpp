// Figs. 4-5 reproduction: cumulative W_161 (WindowsEvent) and B_50 (BSOD)
// counts for four faulty (F1-F4) vs four healthy (N1-N4) vendor-I drives
// over the 30 days preceding the faulty drives' failures, plus population
// averages. Observation #3/#4: faulty drives accumulate far more events.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/preprocess.hpp"
#include "sim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Figs. 4-5: cumulative W_161 / B_50 ===");

  print_section(std::cout, "Tracked event catalogs (Tables III-IV)");
  std::cout << "WindowsEvents: ";
  for (const auto& e : sim::windows_event_types()) std::cout << e.name << " ";
  std::cout << "\nBSOD codes:    ";
  for (const auto& c : sim::bsod_code_types()) std::cout << c.name << " ";
  std::cout << "\n";

  const core::Preprocessor pre;
  const std::size_t w161 = sim::windows_event_index(161);
  const std::size_t b50 = sim::bsod_code_index(0x50);

  std::vector<core::ProcessedDrive> faulty, healthy;
  for (const auto& series : world.telemetry) {
    if (series.vendor != 0) continue;
    auto drive = pre.process_drive(series);
    if (drive.records.size() < 10) continue;
    (drive.failed ? faulty : healthy).push_back(std::move(drive));
  }

  auto trajectory = [&](const core::ProcessedDrive& d, std::size_t channel,
                        bool is_w) {
    // Cumulative counts at -30, -25, ..., 0 days relative to the last record.
    std::vector<double> points;
    const DayIndex end = d.records.back().day;
    for (int back = 30; back >= 0; back -= 5) {
      const DayIndex day = end - back;
      double value = 0.0;
      for (const auto& r : d.records) {
        if (r.day <= day) value = is_w ? r.w_cum[channel] : r.b_cum[channel];
      }
      points.push_back(value);
    }
    return points;
  };

  for (const bool is_w : {true, false}) {
    print_section(std::cout, is_w ? "Fig. 4: cumulative W_161"
                                  : "Fig. 5: cumulative B_50");
    TablePrinter table({"drive", "-30d", "-25d", "-20d", "-15d", "-10d", "-5d",
                        "0d (failure/last obs)"});
    const std::size_t channel = is_w ? w161 : b50;
    for (std::size_t i = 0; i < 4 && i < faulty.size(); ++i) {
      std::vector<std::string> row{"F" + std::to_string(i + 1)};
      for (double v : trajectory(faulty[i], channel, is_w)) {
        row.push_back(format_double(v, 1));
      }
      table.add_row(row);
    }
    for (std::size_t i = 0; i < 4 && i < healthy.size(); ++i) {
      std::vector<std::string> row{"N" + std::to_string(i + 1)};
      for (double v : trajectory(healthy[i], channel, is_w)) {
        row.push_back(format_double(v, 1));
      }
      table.add_row(row);
    }
    table.print(std::cout);

    // Population means at the final observation.
    double faulty_mean = 0.0, healthy_mean = 0.0;
    for (const auto& d : faulty) {
      faulty_mean += is_w ? d.records.back().w_cum[channel]
                          : d.records.back().b_cum[channel];
    }
    for (const auto& d : healthy) {
      healthy_mean += is_w ? d.records.back().w_cum[channel]
                           : d.records.back().b_cum[channel];
    }
    if (!faulty.empty()) faulty_mean /= static_cast<double>(faulty.size());
    if (!healthy.empty()) healthy_mean /= static_cast<double>(healthy.size());
    std::cout << "population mean at last observation: faulty="
              << format_double(faulty_mean, 2)
              << " healthy=" << format_double(healthy_mean, 2) << "  (ratio "
              << format_double(healthy_mean > 0 ? faulty_mean / healthy_mean : 0.0, 1)
              << "x)\n";
  }
  std::cout << "\nPaper shape: F1-F4 curves rise sharply before failure while"
               " N1-N4 stay near zero.\n";
  return 0;
}
