// Figs. 12 & 16 reproduction: portability across time periods. One model is
// trained on the first part of the window and then predicts for months
// without retraining; TPR stays level while FPR creeps up after ~2-3 months
// (feature drift: seasonal temperature + firmware releases the model never
// saw), matching the paper's "the model needs iteration every 2-3 months".
#include <iostream>

#include "bench_common.hpp"
#include "core/online_predictor.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Figs. 12/16: time-period portability ===");

  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = args.seed;
  config.train_fraction = 0.45;  // train once, predict ~5+ months forward
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(world.telemetry, world.tickets);
  std::cout << "model trained through day " << report.split_day
            << " (threshold " << format_double(report.threshold, 3) << ")\n\n";

  const auto months = core::OnlinePredictor::monthly_breakdown(report);
  TablePrinter table({"month after training", "samples", "TPR", "FPR", "ACC"});
  int first_month = months.empty() ? 0 : months.front().month;
  for (const auto& m : months) {
    table.add_row({std::to_string(m.month - first_month + 1),
                   std::to_string(m.cm.total()), format_percent(m.cm.tpr()),
                   format_percent(m.cm.fpr()),
                   format_percent(m.cm.accuracy())});
  }
  table.print(std::cout);
  std::cout << "\nPaper: vendor-I TPR stable for five months; FPR rises to"
               " 1.34% by month three -> models are re-trained every two to"
               " three months in deployment.\n";
  return 0;
}
