// Figs. 10 & 14 reproduction: MFPA (SFWB, vendor I) across the paper's five
// algorithms — Bayes, SVM, RF, GBDT, CNN_LSTM. Tree models should lead;
// CNN_LSTM suffers from the discontinuous data. Includes the
// timepoint-vs-random segmentation ablation (Fig. 8(a)).
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Figs. 10/14: algorithm portability ===");

  print_section(std::cout, "MFPA per algorithm (SFWB, vendor I)");
  TablePrinter table({"algorithm", "TPR", "FPR", "ACC", "PDR", "AUC"});
  for (const std::string algo : {"Bayes", "SVM", "RF", "GBDT", "CNN_LSTM"}) {
    core::MfpaConfig config;
    config.vendor = 0;
    config.algorithm = algo;
    config.seed = args.seed;
    if (algo == "CNN_LSTM") {
      // Keep the from-scratch network affordable at bench scale.
      config.hyperparams = {{"epochs", 8.0},  {"channels", 12.0},
                            {"hidden", 16.0}, {"lr", 2e-3},
                            {"batch", 64.0}};
    }
    core::MfpaPipeline pipeline(config);
    const auto report = pipeline.run(world.telemetry, world.tickets);
    std::vector<std::string> row{algo};
    for (const auto& cell : bench::metric_cells(report)) row.push_back(cell);
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nPaper: traditional ML >95% TPR; RF best (98.18%/0.56%);"
               " CNN_LSTM 94.74% TPR at 12.98% FPR — discontinuous CSS data"
               " hurts the sequence model; tree models win.\n";

  print_section(std::cout,
                "Ablation: timepoint segmentation vs random split (RF)");
  TablePrinter split_table({"split", "TPR", "FPR", "ACC", "PDR", "AUC"});
  for (const bool time_split : {true, false}) {
    core::MfpaConfig config;
    config.vendor = 0;
    config.seed = args.seed;
    config.time_split = time_split;
    core::MfpaPipeline pipeline(config);
    const auto report = pipeline.run(world.telemetry, world.tickets);
    std::vector<std::string> row{time_split ? "timepoint (paper)" : "random"};
    for (const auto& cell : bench::metric_cells(report)) row.push_back(cell);
    split_table.add_row(row);
  }
  split_table.print(std::cout);
  std::cout << "(random splits leak future data and report optimistic"
               " numbers — the paper's Fig. 8 argument)\n";
  return 0;
}
