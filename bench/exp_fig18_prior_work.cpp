// Fig. 18 reproduction: MFPA vs state-of-the-art SSD failure predictors
// [19]-[22], re-created as method-shape proxies on the same simulated CSS
// data (see baselines/prior_work.hpp for the mapping).
#include <iostream>

#include "baselines/prior_work.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Fig. 18: MFPA vs prior work ===");

  // All models share MFPA's labeling/segmentation; they differ in feature
  // family and algorithm. Besides the default-threshold point we report
  // "TPR @ 1% FPR" — a common operating point read off each model's ROC —
  // because single-threshold TPR/FPR pairs are not comparable across models.
  TablePrinter table(
      {"model", "method", "TPR", "FPR", "AUC", "TPR@1%FPR"});
  for (const auto& m : baselines::prior_work_models(0, args.seed)) {
    std::vector<std::string> row{m.label, m.description};
    try {
      core::MfpaPipeline pipeline(m.config);
      const auto report = pipeline.run(world.telemetry, world.tickets);
      row.push_back(format_percent(report.cm.tpr()));
      row.push_back(format_percent(report.cm.fpr()));
      row.push_back(format_percent(report.auc));
      const double t = ml::threshold_for_fpr(report.test_labels,
                                             report.test_scores, 0.01);
      const auto cm01 =
          ml::confusion_at(report.test_labels, report.test_scores, t);
      row.push_back(format_percent(cm01.tpr()));
    } catch (const std::exception&) {
      for (int i = 0; i < 4; ++i) row.push_back("n/a");
    }
    table.add_row(row);
  }
  // Unsupervised floor: isolation forest on the same SFWB samples — what a
  // deployment gets *without* mining trouble tickets for labels at all.
  {
    core::MfpaConfig config;
    config.vendor = 0;
    config.seed = args.seed;
    config.algorithm = "IForest";
    config.hyperparams = {{"n_trees", 100.0}, {"subsample", 256.0}};
    std::vector<std::string> row{"unsupervised floor",
                                 "isolation forest on SFWB (labels unused)"};
    try {
      core::MfpaPipeline pipeline(config);
      const auto report = pipeline.run(world.telemetry, world.tickets);
      row.push_back("n/a");  // anomaly scores have no 0.5 operating point
      row.push_back("n/a");
      row.push_back(format_percent(report.auc));
      const double t = ml::threshold_for_fpr(report.test_labels,
                                             report.test_scores, 0.01);
      const auto cm01 =
          ml::confusion_at(report.test_labels, report.test_scores, t);
      row.push_back(format_percent(cm01.tpr()));
    } catch (const std::exception&) {
      for (int i = 0; i < 4; ++i) row.push_back("n/a");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nPaper: MFPA achieves the best performance across [19]-[22],"
               " reflecting the effectiveness of the SFWB feature groups.\n"
               "Expected ordering here: MFPA leads on AUC and TPR@1%FPR;\n"
               "single-feature-family baselines trail it.\n";
  return 0;
}
