// Fault-tolerance experiment: proves the graceful-degradation ingestion path
// survives every injected telemetry fault mode, and quantifies the prediction
// cost of surviving it.
//
// For each fault mode at several injection rates, the clean simulated batch
// is corrupted (structured modes in memory, textual modes through a CSV
// round-trip, ticket modes on the ticket stream), then the full MFPA
// pipeline runs in lenient mode. The table reports the ingest accounting
// (repaired / dropped / quarantined) and the TPR/FPR delta vs the clean
// baseline. Any uncaught exception in a lenient run fails the harness
// (exit 1) — that is the acceptance criterion. A final strict-mode probe
// demonstrates the fail-fast contract: first malformed row, line-numbered
// diagnostic.
//
//   ./exp_fault_tolerance [--scenario=tiny|small|default|large] [--seed=N]
#include <algorithm>
#include <exception>
#include <sstream>

#include "bench_common.hpp"
#include "sim/fault_injector.hpp"
#include "sim/telemetry_io.hpp"

namespace {

using namespace mfpa;

constexpr double kRates[] = {0.01, 0.05, 0.20};

struct RunResult {
  core::MfpaReport report;
  IngestStats read_stats;  ///< CSV-layer stats (textual modes only)
};

core::MfpaConfig lenient_config(std::uint64_t seed) {
  core::MfpaConfig config;
  config.seed = seed;
  config.preprocess.robustness.mode = IngestMode::kLenient;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfpa;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "Fault tolerance: TPR/FPR degradation vs "
                            "injection rate (lenient ingestion)");

  // Observation window, for the ticket-displacement mode.
  DayIndex window_lo = 0, window_hi = 0;
  bool have_window = false;
  for (const auto& s : world.telemetry) {
    if (s.records.empty()) continue;
    if (!have_window) {
      window_lo = s.records.front().day;
      window_hi = s.records.back().day;
      have_window = true;
    } else {
      window_lo = std::min(window_lo, s.records.front().day);
      window_hi = std::max(window_hi, s.records.back().day);
    }
  }

  // Clean lenient baseline.
  core::MfpaPipeline baseline_pipeline(lenient_config(args.seed));
  const auto baseline =
      baseline_pipeline.run(world.telemetry, world.tickets);
  std::cout << "clean baseline: TPR " << format_percent(baseline.cm.tpr())
            << ", FPR " << format_percent(baseline.cm.fpr()) << "\n\n";

  TablePrinter table({"fault mode", "rate", "injected", "repaired", "dropped",
                      "quarantined", "TPR", "FPR", "dTPR", "dFPR"});
  int failures = 0;

  for (std::size_t m = 0; m < sim::kNumFaultModes; ++m) {
    const auto mode = static_cast<sim::FaultMode>(m);
    for (double rate : kRates) {
      sim::FaultInjector injector({{{mode, rate}}, args.seed + m});
      RunResult run;
      try {
        std::vector<sim::DriveTimeSeries> telemetry;
        std::vector<sim::TroubleTicket> tickets = world.tickets;
        RobustnessConfig lenient;
        lenient.mode = IngestMode::kLenient;
        if (sim::fault_mode_is_textual(mode)) {
          // Textual faults only exist on the wire: serialize, corrupt the
          // bytes, and read back through the lenient CSV path.
          std::stringstream wire;
          sim::write_telemetry_csv(wire, world.telemetry);
          std::stringstream corrupted(injector.corrupt_csv(wire.str()));
          telemetry =
              sim::read_telemetry_csv(corrupted, lenient, &run.read_stats);
        } else if (sim::fault_mode_is_ticket(mode)) {
          telemetry = world.telemetry;
          tickets = injector.corrupt_tickets(tickets, window_lo, window_hi);
        } else {
          telemetry = injector.corrupt(world.telemetry);
        }
        core::MfpaPipeline pipeline(lenient_config(args.seed));
        run.report = pipeline.run(telemetry, tickets);
      } catch (const std::exception& e) {
        std::cerr << "FAULT-TOLERANCE FAILURE: lenient pipeline threw under "
                  << sim::fault_mode_name(mode) << " @ " << rate << ": "
                  << e.what() << "\n";
        ++failures;
        continue;
      }
      IngestStats combined = run.read_stats;
      combined.merge(run.report.ingest_stats);
      table.add_row({sim::fault_mode_name(mode), format_double(rate, 2),
                     std::to_string(injector.stats().of(mode)),
                     std::to_string(combined.rows_repaired),
                     std::to_string(combined.rows_dropped),
                     std::to_string(combined.drives_quarantined),
                     format_percent(run.report.cm.tpr()),
                     format_percent(run.report.cm.fpr()),
                     format_percent(run.report.cm.tpr() - baseline.cm.tpr()),
                     format_percent(run.report.cm.fpr() - baseline.cm.fpr())});
    }
  }
  table.print(std::cout);

  // Strict mode still fails fast, with a located diagnostic.
  std::cout << "\nstrict-mode contract: ";
  {
    sim::FaultInjector injector(
        {{{sim::FaultMode::kTruncatedRow, 0.05}}, args.seed});
    std::stringstream wire;
    sim::write_telemetry_csv(wire, world.telemetry);
    std::stringstream corrupted(injector.corrupt_csv(wire.str()));
    try {
      (void)sim::read_telemetry_csv(corrupted);
      std::cout << "ERROR — strict read of corrupted CSV did not throw\n";
      ++failures;
    } catch (const std::exception& e) {
      std::cout << "fail-fast OK — " << e.what() << "\n";
    }
  }

  if (failures > 0) {
    std::cerr << "\n" << failures << " fault-tolerance failure(s)\n";
    return 1;
  }
  std::cout << "\nall " << sim::kNumFaultModes << " fault modes x "
            << std::size(kRates)
            << " rates survived lenient ingestion with zero uncaught "
               "exceptions\n";
  return 0;
}
