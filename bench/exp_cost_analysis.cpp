// Extension experiment: economic reading of the feature-group comparison.
// The paper motivates MFPA by cost (downtime $8,851/min; consumer data
// recovery at multiples of the SSD price) and introduces PDR as a migration
// overhead proxy. This harness prices each feature group's test predictions
// under a missed-failure-dominated cost model and reports the cost-optimal
// operating point per group.
#include <iostream>

#include "bench_common.hpp"
#include "core/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Cost-sensitive analysis of feature groups ===");

  const core::MisclassificationCosts costs;  // FN=100, FP=4, TP=1
  std::cout << "cost model: missed failure " << costs.missed_failure
            << ", false alarm " << costs.false_alarm << ", planned migration "
            << costs.planned_migration << " (per event)\n\n";

  // The deployed column prices the pipeline's shipped threshold; the oracle
  // column is the hindsight-optimal threshold on the test scores — a bound
  // on what threshold tuning alone could recover for that feature group.
  TablePrinter table({"group", "cost/sample (deployed)", "oracle threshold",
                      "cost/sample (oracle)", "TPR @oracle", "FPR @oracle"});
  double s_cost = 0.0, sfwb_cost = 0.0;
  for (core::FeatureGroup g : core::all_feature_groups()) {
    core::MfpaConfig config;
    config.vendor = 0;
    config.group = g;
    config.seed = args.seed;
    core::MfpaPipeline pipeline(config);
    const auto report = pipeline.run(world.telemetry, world.tickets);

    const double at_default = costs.per_sample(report.cm);
    const double t = core::cost_optimal_threshold(report.test_labels,
                                                  report.test_scores, costs);
    const auto cm =
        ml::confusion_at(report.test_labels, report.test_scores, t);
    const double at_optimal = costs.per_sample(cm);
    if (g == core::FeatureGroup::kS) s_cost = at_default;
    if (g == core::FeatureGroup::kSFWB) sfwb_cost = at_default;
    table.add_row({core::feature_group_name(g), format_double(at_default, 3),
                   format_double(t, 3), format_double(at_optimal, 3),
                   format_percent(cm.tpr()), format_percent(cm.fpr())});
  }
  table.print(std::cout);
  if (s_cost > 0.0) {
    std::cout << "\nAt the deployed operating point, SFWB cuts the cost per"
                 " monitored sample by "
              << format_percent(1.0 - sfwb_cost / s_cost)
              << " versus the SMART-only model — the economic version of the"
                 " paper's TPR/FPR headline. (Oracle thresholds are noisy on"
                 " a per-group basis; compare the deployed column.)\n";
  }
  return 0;
}
