// Fig. 20 reproduction: per-stage overhead of the MFPA pipeline — items,
// execution time, and working-set size — plus deployment-style per-drive
// inference latency (the paper reports microsecond-level client-side
// prediction and ~3 minutes for 4M records).
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args, "=== Fig. 20: pipeline overhead ===");

  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = args.seed;
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(world.telemetry, world.tickets);

  TablePrinter table({"stage", "data items", "time (ms)", "space (MB)",
                      "throughput (items/s)"});
  for (const auto& s : report.stages) {
    const double mb = static_cast<double>(s.bytes) / (1024.0 * 1024.0);
    const double rate =
        s.seconds > 0 ? static_cast<double>(s.items) / s.seconds : 0.0;
    table.add_row({s.name, format_with_commas(static_cast<long long>(s.items)),
                   format_double(s.seconds * 1e3, 1), format_double(mb, 1),
                   format_with_commas(static_cast<long long>(rate))});
  }
  table.print(std::cout);

  // Client-side inference latency: score one observation at a time.
  print_section(std::cout, "Client-side inference latency");
  std::vector<sim::DriveTimeSeries> vendor0;
  for (const auto& s : world.telemetry) {
    if (s.vendor == 0) vendor0.push_back(s);
  }
  const core::Preprocessor pre;
  const auto drives = pre.process(vendor0);
  const auto builder = pipeline.make_builder();
  data::Dataset probe;
  probe.feature_names = builder.feature_names();
  for (const auto& d : drives) {
    if (probe.size() >= 1000) break;
    for (const auto& r : d.records) {
      if (probe.size() >= 1000) break;
      probe.add(builder.features_of(r), 0, {d.drive_id, r.day, d.vendor});
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kReps = 20;
  for (int rep = 0; rep < kReps; ++rep) {
    (void)pipeline.score(probe);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double us_per_record =
      secs / (kReps * static_cast<double>(probe.size())) * 1e6;
  std::cout << "scored " << probe.size() << " observations x" << kReps
            << " reps: " << format_double(us_per_record, 2)
            << " us/record -> "
            << format_double(4e6 * us_per_record / 1e6 / 60.0, 2)
            << " minutes per 4M records\n"
            << "(paper: ~3 minutes for 4 million real-time records;"
               " microsecond-level per-record prediction on the client)\n";
  return 0;
}
