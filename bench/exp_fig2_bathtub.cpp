// Fig. 2 reproduction: failure count vs power-on hours (S_12) follows the
// bathtub curve — elevated infant mortality, a stable middle, and a rising
// wear-out tail.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  sim::FleetSimulator fleet(sim::scenario_by_name(args.scenario, args.seed));

  std::vector<double> poh;
  std::vector<double> ages;
  for (const auto& d : fleet.drives()) {
    if (!d.outcome.fails) continue;
    poh.push_back(d.poh_at_failure());
    ages.push_back(d.outcome.age_at_failure);
  }
  std::cout << "=== Fig. 2: failure distribution over power-on hours ===\n"
            << "failures=" << poh.size() << "\n\n";

  stats::Histogram hist(0.0, 8000.0, 16);
  for (double h : poh) hist.add(h);
  TablePrinter table({"POH bin", "failures", "bar"});
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const std::size_t n = hist.bin_count(b);
    table.add_row({format_double(hist.bin_lo(b), 0) + "-" +
                       format_double(hist.bin_hi(b), 0) + "h",
                   std::to_string(n),
                   std::string(std::min<std::size_t>(n / 2, 60), '#')});
  }
  table.print(std::cout);

  // Bathtub hazard: failures per observed drive-day of exposure in each age
  // band (exposure-normalized, so the declining population of old drives
  // does not mask the wear-out rise).
  struct Band {
    const char* name;
    double lo;
    double hi;
    double exposure_days = 0.0;
    std::size_t failures = 0;
  };
  std::vector<Band> bands{{"infancy", 0.0, 90.0},
                          {"early stable", 90.0, 300.0},
                          {"late stable", 300.0, 650.0},
                          {"wear-out", 650.0, 1300.0}};
  const DayIndex horizon = fleet.scenario().horizon_days;
  for (const auto& d : fleet.drives()) {
    const double age_at_window_start =
        std::max(0.0, -static_cast<double>(d.outcome.deploy_day));
    const double age_at_end =
        d.outcome.fails
            ? d.outcome.age_at_failure
            : static_cast<double>(horizon - d.outcome.deploy_day);
    for (auto& band : bands) {
      const double lo = std::max(band.lo, age_at_window_start);
      const double hi = std::min(band.hi, age_at_end);
      if (hi > lo) band.exposure_days += hi - lo;
      if (d.outcome.fails && d.outcome.age_at_failure >= band.lo &&
          d.outcome.age_at_failure < band.hi) {
        ++band.failures;
      }
    }
  }
  print_section(std::cout, "Lifecycle hazard (exposure-normalized)");
  TablePrinter phases({"phase", "age range (days)", "failures",
                       "exposure (Mdrive-days)", "hazard (per 100k drive-days)"});
  for (const auto& band : bands) {
    const double hazard =
        band.exposure_days > 0
            ? static_cast<double>(band.failures) / band.exposure_days * 1e5
            : 0.0;
    phases.add_row({band.name,
                    format_double(band.lo, 0) + "-" + format_double(band.hi, 0),
                    std::to_string(band.failures),
                    format_double(band.exposure_days / 1e6, 2),
                    format_double(hazard, 2)});
  }
  phases.print(std::cout);
  std::cout << "\nPaper shape (Fig. 2): hazard high in infancy, flat through\n"
               "the stable phase, rising again in wear-out (bathtub).\n";
  return 0;
}
