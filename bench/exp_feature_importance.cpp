// Extension experiment: which features carry MFPA's signal? (The paper's
// Fig. 17 discussion names Error/Media counters, power cycles, W_11, W_49,
// W_51, W_161, B_50, B_7A as "requiring special attention" and calls
// Available Spare Threshold uninformative.) Reports the random forest's
// gain-weighted importance over the SFWB space, per vendor.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "core/failure_time.hpp"
#include "core/preprocess.hpp"
#include "ml/random_forest.hpp"
#include "ml/sampler.hpp"
#include "sim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== RF feature importance over SFWB ===");

  const core::Preprocessor pre;
  const core::FailureTimeIdentifier identifier(7);
  for (int vendor : {0, 1}) {
    std::vector<sim::DriveTimeSeries> series;
    for (const auto& s : world.telemetry) {
      if (s.vendor == vendor) series.push_back(s);
    }
    const auto drives = pre.process(series);
    const auto encoder = core::Preprocessor::fit_firmware_encoder(drives);
    const auto failures = identifier.identify_all(world.tickets, drives);
    core::SampleConfig sc;
    sc.group = core::FeatureGroup::kSFWB;
    sc.seed = args.seed;
    const core::SampleBuilder builder(sc, &encoder);
    data::Dataset ds = builder.build(drives, failures);
    const ml::RandomUnderSampler sampler(3.0, args.seed);
    ds = sampler.resample(ds);

    ml::RandomForestClassifier rf(
        {{"n_trees", 60}, {"max_depth", 14}, {"seed", 1}});
    rf.fit(ds.X, ds.y);
    const auto importance = rf.feature_importance();

    std::vector<std::size_t> order(importance.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return importance[a] > importance[b];
    });

    print_section(std::cout,
                  "Vendor " + sim::vendor_catalog()[static_cast<std::size_t>(
                                  vendor)].name +
                      " — top 15 features by gain importance");
    TablePrinter table({"rank", "feature", "description", "importance", "bar"});
    for (std::size_t i = 0; i < 15 && i < order.size(); ++i) {
      const std::string& name = ds.feature_names[order[i]];
      std::string description;
      if (name[0] == 'S' && name != "S") {
        description = sim::smart_attr_descriptions()[std::stoul(name.substr(2)) - 1];
      } else if (name == "F") {
        description = "FirmwareVersion (label-encoded)";
      } else if (name[0] == 'W') {
        description = sim::windows_event_types()[sim::windows_event_index(
                          std::stoi(name.substr(2)))].description;
      } else {
        description = "BSOD stop code (cumulative)";
      }
      if (description.size() > 45) description = description.substr(0, 42) + "...";
      table.add_row({std::to_string(i + 1), name, description,
                     format_percent(importance[order[i]]),
                     std::string(static_cast<std::size_t>(
                                     importance[order[i]] * 200.0),
                                 '#')});
    }
    table.print(std::cout);
    // The anti-feature check from the paper: S_4 should be near-zero.
    const std::size_t s4 = ds.feature_index("S_4");
    std::cout << "S_4 (Available Spare Threshold) importance: "
              << format_percent(importance[s4])
              << "  (paper: 'less associated with SSD failures')\n";
  }
  return 0;
}
