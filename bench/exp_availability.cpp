// Extension experiment: the paper's bottom line, quantified. Consumer
// machines have no RAID/EC to fall back on, so an unpredicted SSD death
// means a long outage and likely data loss. This harness replays the live
// period through the trained MFPA model and compares fleet downtime and
// expected data-loss events against (a) the reactive status quo and (b) the
// vendor SMART-threshold detector that CSS ships today.
#include <iostream>
#include <unordered_set>

#include "baselines/smart_threshold.hpp"
#include "bench_common.hpp"
#include "core/availability.hpp"
#include "core/online_predictor.hpp"
#include "core/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== System availability: reactive vs proactive ===");

  // Train MFPA on the first 60% of the window; the rest is the live period.
  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = args.seed;
  config.train_fraction = 0.6;
  config.fpr_weight = 6.0;
  config.decision_threshold = -1.0;
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(world.telemetry, world.tickets);

  // Replay: first MFPA alert per drive; vendor-threshold alarms per drive.
  const core::Preprocessor pre;
  core::OnlinePredictor predictor(pipeline);
  const baselines::SmartThresholdDetector threshold_detector;
  core::SampleConfig smart_cfg;
  smart_cfg.group = core::FeatureGroup::kS;
  const core::SampleBuilder smart_builder(smart_cfg, nullptr);

  std::vector<core::FirstAlert> mfpa_alerts, vendor_alerts;
  core::FailureDays live_failures;
  std::size_t healthy_monitored = 0;
  for (const auto& series : world.telemetry) {
    if (series.vendor != 0) continue;
    auto drive = pre.process_drive(series);
    std::erase_if(drive.records, [&](const core::ProcessedRecord& r) {
      return r.day <= report.split_day;
    });
    if (drive.records.empty()) continue;
    if (series.failed && series.failure_day > report.split_day) {
      live_failures[series.drive_id] = series.failure_day;
    } else if (!series.failed) {
      ++healthy_monitored;
    }
    // MFPA alerts.
    predictor.clear_alerts();
    predictor.score_drive(drive);
    if (!predictor.alerts().empty()) {
      mfpa_alerts.push_back(
          {series.drive_id, predictor.alerts().front().day});
    }
    // Vendor SMART-threshold alarms.
    data::Dataset rows;
    rows.feature_names = smart_builder.feature_names();
    for (const auto& r : drive.records) {
      rows.add(smart_builder.features_of(r), 0,
               {drive.drive_id, r.day, drive.vendor});
    }
    const auto alarms = threshold_detector.predict(rows);
    for (std::size_t i = 0; i < alarms.size(); ++i) {
      if (alarms[i] == 1) {
        vendor_alerts.push_back({drive.drive_id, rows.meta[i].day});
        break;
      }
    }
  }

  const core::AvailabilityParams params;
  const auto reactive = core::reactive_baseline(live_failures.size(), params);
  const auto vendor = core::evaluate_availability(vendor_alerts, live_failures, params);
  const auto proactive = core::evaluate_availability(mfpa_alerts, live_failures, params);

  std::cout << "live period: day " << report.split_day << "+ | failing drives "
            << live_failures.size() << " | healthy monitored "
            << healthy_monitored << "\n\n";
  TablePrinter table({"policy", "planned", "rushed", "missed", "false alarms",
                      "downtime (h)", "h/failure", "expected data-loss events"});
  auto row = [&](const char* label, const core::AvailabilityOutcome& o) {
    table.add_row({label, std::to_string(o.planned), std::to_string(o.rushed),
                   std::to_string(o.missed), std::to_string(o.false_alarms),
                   format_double(o.downtime_hours, 1),
                   format_double(o.downtime_per_failure(), 1),
                   format_double(o.expected_data_loss_events, 1)});
  };
  row("reactive (status quo)", reactive);
  row("vendor SMART threshold", vendor);
  row("MFPA (SFWB)", proactive);
  table.print(std::cout);

  if (reactive.downtime_hours > 0.0) {
    std::cout << "\nMFPA removes "
              << format_percent(1.0 -
                                proactive.downtime_hours / reactive.downtime_hours)
              << " of fleet downtime vs the reactive baseline ("
              << format_percent(1.0 - vendor.downtime_hours /
                                          reactive.downtime_hours)
              << " for the vendor threshold rule) — the paper's"
                 " 'substantially improving the system availability'.\n";
  }
  return 0;
}
