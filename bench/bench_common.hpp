// Shared scaffolding for the experiment harnesses (bench/exp_*.cpp): CLI
// parsing, fleet construction, and one-line metric rows. Every harness
// accepts:
//   --scenario=tiny|small|default|large   (default: default)
//   --seed=N                              (default: 42)
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.hpp"
#include "common/table_printer.hpp"
#include "core/mfpa.hpp"
#include "sim/fleet.hpp"

namespace mfpa::bench {

struct BenchArgs {
  std::string scenario = "default";
  std::uint64_t seed = 42;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--scenario=")) {
      args.scenario = arg.substr(11);
    } else if (starts_with(arg, "--seed=")) {
      args.seed = static_cast<std::uint64_t>(std::stoull(arg.substr(7)));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--scenario=tiny|small|default|large] [--seed=N]\n";
      std::exit(0);
    }
  }
  return args;
}

/// Simulated world shared by most harnesses.
struct World {
  sim::FleetSimulator fleet;
  std::vector<sim::DriveTimeSeries> telemetry;
  std::vector<sim::TroubleTicket> tickets;

  explicit World(const BenchArgs& args)
      : fleet(sim::scenario_by_name(args.scenario, args.seed)),
        telemetry(fleet.generate_telemetry(/*threads=*/0)),  // deterministic
        tickets(fleet.tickets()) {}
};

/// Row cells for one evaluated model (TPR/FPR/ACC/PDR/AUC as percents).
inline std::vector<std::string> metric_cells(const core::MfpaReport& r) {
  return {format_percent(r.cm.tpr()), format_percent(r.cm.fpr()),
          format_percent(r.cm.accuracy()), format_percent(r.cm.pdr()),
          format_percent(r.auc)};
}

inline const std::vector<std::string>& metric_headers() {
  static const std::vector<std::string> kHeaders = {"TPR", "FPR", "ACC", "PDR",
                                                    "AUC"};
  return kHeaders;
}

inline void print_world_banner(const World& world, const BenchArgs& args,
                               const std::string& title) {
  std::size_t records = 0;
  for (const auto& t : world.telemetry) records += t.records.size();
  std::cout << title << "\n"
            << "scenario=" << args.scenario << " seed=" << args.seed
            << " | tracked drives=" << world.telemetry.size()
            << " records=" << format_with_commas(static_cast<long long>(records))
            << " tickets=" << world.tickets.size() << "\n";
}

}  // namespace mfpa::bench
