// Fig. 17 reproduction: sequential forward selection over the SFWB pool.
// The paper's trajectory: TPR 0.926 -> 0.9818 and FPR 0.023 -> 0.0056 as the
// greedy subset grows, with Available Spare Threshold contributing nothing
// and features like Error/Media counters, power cycles, W_11/W_49/W_51/W_161
// and B_50/B_7A carrying the signal.
#include <iostream>

#include "bench_common.hpp"
#include "core/failure_time.hpp"
#include "core/preprocess.hpp"
#include "ml/factory.hpp"
#include "ml/feature_selection.hpp"
#include "ml/metrics.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Fig. 17: sequential forward selection ===");

  // Build the SFWB dataset once (vendor I).
  std::vector<sim::DriveTimeSeries> vendor0;
  for (const auto& s : world.telemetry) {
    if (s.vendor == 0) vendor0.push_back(s);
  }
  const core::Preprocessor pre;
  const auto drives = pre.process(vendor0);
  const auto encoder = core::Preprocessor::fit_firmware_encoder(drives);
  const core::FailureTimeIdentifier identifier(7);
  const auto failures = identifier.identify_all(world.tickets, drives);
  core::SampleConfig sc;
  sc.group = core::FeatureGroup::kSFWB;
  sc.seed = args.seed;
  const core::SampleBuilder builder(sc, &encoder);
  const auto ds = builder.build(drives, failures);
  std::cout << "samples=" << ds.size() << " positives=" << ds.positives()
            << " features=" << ds.num_features() << "\n\n";

  // A lean RF keeps 45 features x k folds x rounds affordable.
  const auto prototype = ml::make_classifier(
      "RF", {{"n_trees", 12}, {"max_depth", 10}, {"seed", 1}});
  const auto result =
      ml::sequential_forward_selection(*prototype, ds, 3, 5e-5, 10);

  TablePrinter table({"step", "added feature", "CV AUC"});
  for (std::size_t i = 0; i < result.trajectory.size(); ++i) {
    table.add_row({std::to_string(i + 1), result.trajectory[i].added_feature,
                   format_double(result.trajectory[i].score, 4)});
  }
  table.print(std::cout);

  // Evaluate full SFWB vs the selected subset on a held-out time split.
  auto evaluate = [&](const data::Dataset& d) {
    const data::Dataset sorted = d.sorted_by_time();
    const DayIndex cutoff =
        sorted.meta[sorted.size() * 7 / 10].day;  // ~70% timepoint
    auto [train, test] = sorted.split_by_day(cutoff);
    auto model = ml::make_classifier("RF", {{"n_trees", 60}, {"seed", 1}});
    model->fit(train.X, train.y);
    const auto scores = model->predict_proba(test.X);
    return ml::confusion_at(test.y, scores, 0.5);
  };
  const auto full = evaluate(ds);
  const auto selected = evaluate(ds.select_features(result.selected));
  print_section(std::cout, "Full SFWB vs selected subset (held-out)");
  TablePrinter cmp({"feature set", "features", "TPR", "FPR"});
  cmp.add_row({"all SFWB", std::to_string(ds.num_features()),
               format_percent(full.tpr()), format_percent(full.fpr())});
  cmp.add_row({"SFS subset", std::to_string(result.selected.size()),
               format_percent(selected.tpr()), format_percent(selected.fpr())});
  cmp.print(std::cout);
  std::cout << "\nPaper: selection lifts TPR 0.926 -> 0.9818 and cuts FPR"
               " 0.023 -> 0.0056; 'Available Spare Threshold' (S_4) is not"
               " selected.\n";
  return 0;
}
