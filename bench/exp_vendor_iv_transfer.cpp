// Extension experiment: rescuing vendor IV. The paper observes its vendor-IV
// model "works not well as it has the fewest faulty SSDs", and cites
// transfer learning for minority disks ([20]) as the known remedy. This
// harness compares three ways to serve vendor IV:
//   1. IV-only training (the paper's per-vendor default),
//   2. a pooled model trained on vendors I-III applied to IV unchanged,
//   3. pooled I-III training data *plus* IV's own data (joint training).
// Features are the S+W+B subset — firmware label codes are vendor-local and
// would not transfer.
#include <iostream>

#include "bench_common.hpp"
#include "core/failure_time.hpp"
#include "core/preprocess.hpp"
#include "ml/factory.hpp"
#include "ml/metrics.hpp"
#include "ml/sampler.hpp"

namespace {

using namespace mfpa;

/// Builds the canonical S-group dataset of one vendor set.
data::Dataset build_vendor_dataset(const bench::World& world,
                                   const std::vector<int>& vendors,
                                   std::uint64_t seed) {
  std::vector<sim::DriveTimeSeries> series;
  for (const auto& s : world.telemetry) {
    for (int v : vendors) {
      if (s.vendor == v) {
        series.push_back(s);
        break;
      }
    }
  }
  const core::Preprocessor pre;
  const auto drives = pre.process(series);
  const core::FailureTimeIdentifier identifier(7);
  const auto failures = identifier.identify_all(world.tickets, drives);
  core::SampleConfig sc;
  sc.group = core::FeatureGroup::kS;
  sc.seed = seed;
  const core::SampleBuilder builder(sc, nullptr);
  return builder.build(drives, failures).sorted_by_time();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Vendor IV: per-vendor vs transfer ===");

  const auto iv = build_vendor_dataset(world, {3}, args.seed);
  const auto pool = build_vendor_dataset(world, {0, 1, 2}, args.seed);
  std::cout << "vendor IV: " << iv.size() << " samples (" << iv.positives()
            << " positive); donor pool I-III: " << pool.size() << " samples ("
            << pool.positives() << " positive)\n\n";

  // Honest split of IV by time: first 70% train, rest test.
  const DayIndex cutoff = iv.meta[iv.size() * 7 / 10].day;
  auto [iv_train, iv_test] = iv.split_by_day(cutoff);

  const ml::RandomUnderSampler sampler(3.0, args.seed);
  auto fit_rf = [&](const data::Dataset& train) {
    auto model = ml::make_classifier(
        "RF", {{"n_trees", 60}, {"max_depth", 14}, {"seed", 1}});
    const auto balanced = sampler.resample(train);
    model->fit(balanced.X, balanced.y);
    return model;
  };

  TablePrinter table({"strategy", "train pos", "TPR", "FPR", "AUC"});
  auto evaluate = [&](const char* label, const data::Dataset& train) {
    std::vector<std::string> row{label, std::to_string(train.positives())};
    if (train.positives() == 0 || train.negatives() == 0 ||
        iv_test.positives() == 0) {
      row.insert(row.end(), {"n/a", "n/a", "n/a"});
      table.add_row(row);
      return;
    }
    const auto model = fit_rf(train);
    const auto scores = model->predict_proba(iv_test.X);
    const auto cm = ml::confusion_at(iv_test.y, scores, 0.5);
    row.push_back(format_percent(cm.tpr()));
    row.push_back(format_percent(cm.fpr()));
    row.push_back(format_percent(ml::auc(iv_test.y, scores)));
    table.add_row(row);
  };

  evaluate("IV only (paper default)", iv_train);
  // Donor data limited to the same time period (no future leakage).
  const auto [pool_train, pool_rest] = pool.split_by_day(cutoff);
  (void)pool_rest;
  evaluate("pooled I-III, applied to IV", pool_train);
  data::Dataset joint = pool_train;
  joint.append(iv_train);
  evaluate("pooled I-III + IV (joint)", joint);

  table.print(std::cout);
  std::cout << "\nExpected shape: IV-only suffers from its tiny positive"
               " count; borrowing the majority vendors' failures (the [20]"
               " transfer idea) recovers most of the gap, and joint training"
               " does at least as well.\n";
  return 0;
}
