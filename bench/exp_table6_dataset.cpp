// Table VI reproduction: per-vendor fleet size, failure count, and
// replacement rate (the scaled fleet preserves the paper's rates).
#include <iostream>

#include "bench_common.hpp"
#include "sim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  sim::FleetSimulator fleet(sim::scenario_by_name(args.scenario, args.seed));
  const auto summaries = fleet.summarize();

  std::cout << "=== Table VI: dataset summary (scenario=" << args.scenario
            << ", scale=" << fleet.scenario().fleet_scale << ") ===\n";
  TablePrinter table({"Manu./Model", "F/F", "Protocol", "FlashTech", "Total",
                      "Sum_failure", "Sum_RR (measured)", "Sum_RR (paper)"});
  const auto& catalog = sim::vendor_catalog();
  std::size_t grand_total = 0, grand_failures = 0;
  for (std::size_t v = 0; v < summaries.size(); ++v) {
    const auto& s = summaries[v];
    grand_total += s.total;
    grand_failures += s.failures;
    table.add_row({s.vendor_name, "M.2 (2280)", "NVMe1.*", "3D TLC",
                   format_with_commas(static_cast<long long>(s.total)),
                   format_with_commas(static_cast<long long>(s.failures)),
                   format_double(s.replacement_rate, 4),
                   format_double(catalog[v].replacement_rate, 4)});
  }
  table.print(std::cout);
  std::cout << "\nFleet total: "
            << format_with_commas(static_cast<long long>(grand_total))
            << " drives, "
            << format_with_commas(static_cast<long long>(grand_failures))
            << " failures (paper: ~2.33M drives, 3,154 failures)\n";

  print_section(std::cout, "Per-vendor model mix (12 models total)");
  TablePrinter models({"Vendor", "Model", "Capacity", "Layers", "Share"});
  for (const auto& vendor : catalog) {
    for (const auto& m : vendor.models) {
      models.add_row({vendor.name, m.name, std::to_string(m.capacity_gb) + "GB",
                      std::to_string(m.flash_layers),
                      format_percent(m.fleet_fraction, 0)});
    }
  }
  models.print(std::cout);
  return 0;
}
