// Figs. 11 & 15 reproduction: MFPA portability across SSD vendors. Vendors
// I-III train well (paper: 98.81%, 96.89%, 97.41% AUC); vendor IV lags
// because it has the fewest faulty drives.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Figs. 11/15: vendor portability ===");

  TablePrinter table({"vendor", "faulty drives tracked", "TPR", "FPR", "ACC",
                      "PDR", "AUC"});
  for (int vendor = 0; vendor < 4; ++vendor) {
    std::size_t faulty = 0;
    for (const auto& s : world.telemetry) {
      if (s.vendor == vendor && s.failed) ++faulty;
    }
    std::vector<std::string> row{
        sim::vendor_catalog()[static_cast<std::size_t>(vendor)].name,
        std::to_string(faulty)};
    try {
      core::MfpaConfig config;
      config.vendor = vendor;
      config.seed = args.seed;
      core::MfpaPipeline pipeline(config);
      const auto report = pipeline.run(world.telemetry, world.tickets);
      for (const auto& cell : bench::metric_cells(report)) row.push_back(cell);
    } catch (const std::exception& e) {
      // Vendor IV at small scales may lack positives in one slice — exactly
      // the paper's "works not well as it has the fewest faulty SSDs".
      for (int i = 0; i < 5; ++i) row.push_back("n/a");
      row.back() = std::string("(") + e.what() + ")";
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nPaper: AUC 98.81% (I), 96.89% (II), 97.41% (III); vendor IV"
               " underperforms for lack of failure data.\n"
               "Cross-vendor transfer (train on I, test elsewhere) is exercised"
               " by examples/vendor_portability.\n";
  return 0;
}
