// Serving-path benchmark: trains and publishes an RF model, then streams
// the simulated fleet through the micro-batched ScoringEngine at maximum
// rate, reporting sustained throughput, batching behaviour, tail latency,
// and drive-level accuracy against simulator ground truth. Results are
// written to BENCH_serving.json (uploaded as a CI artifact alongside
// BENCH_ml_kernels.json; see docs/PERFORMANCE.md and docs/SERVING.md).
//
//   ./bench_serving [--scenario=tiny|small|default|large] [--seed=N]
//                   [--batch=256] [--threads=0] [--shards=4]
//                   [--out=BENCH_serving.json]
//                   [--no-flat] [--no-durable] [--no-sharded]
//                   [--no-multiproc] [--quantized]
//                   [--simd=auto|scalar|neon|avx2]
//
// --no-flat serves from the node-pointer trees instead of the compiled
// flat-forest path; running both and diffing records_per_sec measures the
// serving-side speedup of compiled inference (scores are identical).
// --quantized serves from the uint8-quantized ensemble, and --simd pins
// the flat kernel tier (degrading to what the CPU supports) — together
// they A/B every inference configuration the registry can activate.
//
// Unless --no-durable is given, a second replay pass runs with the
// checksummed WAL + checkpoints enabled (docs/DURABILITY.md), reporting
// durable_records_per_sec so the perf gate tracks the durability tax.
//
// Unless --no-sharded is given, a third pass replays the same fleet over the
// loopback binary protocol into a --shards=N ShardRouter (encode -> TCP ->
// decode -> route; docs/SERVING.md), reporting sharded_records_per_sec,
// sharded_latency_p99_us, and sharded_speedup vs the single-engine pass.
//
// Unless --no-multiproc is given, a fourth pass spawns --shards=N real
// `mfpa shard-serve` OS processes (the fleet-replay --processes topology;
// docs/SERVING.md "multi-process topology") and feeds the same stream
// through a shard-aware ShardedClient, reporting multiproc_records_per_sec
// and multiproc_speedup — the cross-process-boundary cost/scaling the gate
// tracks per commit.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "ml/simd.hpp"
#include "net/fleet_replay.hpp"
#include "net/shard_router.hpp"
#include "net/sharded_client.hpp"
#include "net/supervisor.hpp"
#include "obs/export.hpp"
#include "serve/model_registry.hpp"
#include "serve/replay.hpp"
#include "serve/scoring_engine.hpp"

#ifndef MFPA_CLI_BINARY
#error "MFPA_CLI_BINARY must point at the mfpa executable"
#endif

namespace {

/// Fail-fast flag parsing: count/seed flags must be plain non-negative
/// integers (no sign, no fraction, nothing trailing) at least `min_value`,
/// rejected before the expensive fleet build.
std::uint64_t parse_uint_flag(const std::string& flag, const std::string& text,
                              std::uint64_t min_value) {
  std::size_t used = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (text.empty() || text[0] == '-' || text[0] == '+' ||
      used != text.size() || value < min_value) {
    std::cerr << flag << " must be an integer >= " << min_value << ", got '"
              << text << "'\n";
    std::exit(1);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfpa;
  std::size_t max_batch = 256;
  std::size_t threads = 0;
  std::size_t shards = 4;
  bool flat = true;
  bool durable = true;
  bool sharded = true;
  bool multiproc = true;
  bool quantized = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Validated before bench::parse_args touches --seed (its stoull would
    // die uncaught) and before any telemetry is generated.
    if (starts_with(arg, "--batch="))
      max_batch = parse_uint_flag("--batch", arg.substr(8), 1);
    if (starts_with(arg, "--threads="))
      threads = parse_uint_flag("--threads", arg.substr(10), 0);
    if (starts_with(arg, "--shards="))
      shards = parse_uint_flag("--shards", arg.substr(9), 1);
    if (starts_with(arg, "--seed="))
      parse_uint_flag("--seed", arg.substr(7), 0);
    if (starts_with(arg, "--out=")) out_path = arg.substr(6);
    if (arg == "--no-flat") flat = false;
    if (arg == "--no-durable") durable = false;
    if (arg == "--no-sharded") sharded = false;
    if (arg == "--no-multiproc") multiproc = false;
    if (arg == "--quantized") quantized = true;
    if (starts_with(arg, "--simd=")) {
      std::optional<ml::SimdLevel> level;
      if (!ml::parse_simd_level(arg.substr(7), level)) {
        std::cerr << "--simd must be auto, scalar, neon, or avx2\n";
        return 1;
      }
      ml::set_simd_override(level);
    }
  }
  const auto args = bench::parse_args(argc, argv);
  std::cout << "simd kernel: " << ml::to_string(ml::active_simd_level())
            << "\n";

  bench::World world(args);
  std::cout << "fleet: " << world.telemetry.size() << " drives\n";

  const auto registry_dir =
      (std::filesystem::temp_directory_path() / "mfpa-bench-registry")
          .string();
  std::filesystem::remove_all(registry_dir);
  serve::ModelRegistry registry(registry_dir, threads, flat, quantized);
  core::MfpaConfig config;
  config.seed = args.seed;
  const int version = serve::train_and_publish(registry, config,
                                               world.telemetry, world.tickets);
  std::cout << "published RF v" << version << " (threshold "
            << format_double(registry.current()->manifest.threshold, 3)
            << ")\n";

  serve::EngineConfig engine_config;
  engine_config.max_batch = max_batch;
  engine_config.store.shards = threads;
  serve::ScoringEngine engine(registry, engine_config);
  const serve::FleetReplayer replayer(world.telemetry);
  const auto report = replayer.replay(engine);
  engine.stop();

  // Durable pass: same fleet, same model, with the WAL + checkpoint path
  // on. The throughput delta is the price of crash consistency.
  double durable_records_per_sec = 0.0;
  if (durable) {
    const auto durable_dir =
        (std::filesystem::temp_directory_path() / "mfpa-bench-durable")
            .string();
    std::filesystem::remove_all(durable_dir);
    serve::EngineConfig durable_config = engine_config;
    durable_config.durability.dir = durable_dir;
    serve::ScoringEngine durable_engine(registry, durable_config);
    const auto durable_report = replayer.replay(durable_engine);
    durable_engine.stop();
    durable_records_per_sec = durable_report.records_per_sec;
    std::filesystem::remove_all(durable_dir);
  }

  // Sharded loopback pass: the same fleet encoded through the binary
  // ingestion protocol into a ShardRouter over N engines. The speedup vs the
  // single-engine pass is the scaling headroom the serving tier buys (bounded
  // by available cores; the gate tracks it like any other baseline key).
  double sharded_records_per_sec = 0.0;
  double sharded_latency_p99_us = 0.0;
  double sharded_speedup = 0.0;
  std::uint64_t protocol_errors = 0;
  if (sharded) {
    net::ShardRouterConfig router_config;
    router_config.shards = shards;
    router_config.engine = engine_config;
    net::ShardRouter router(registry, router_config);
    const auto sharded_report = net::replay_over_loopback(router, replayer);
    router.stop();
    sharded_records_per_sec = sharded_report.replay.records_per_sec;
    sharded_latency_p99_us =
        sharded_report.replay.engine.latency_us.quantile(0.99);
    sharded_speedup = report.records_per_sec > 0
                          ? sharded_records_per_sec / report.records_per_sec
                          : 0.0;
    protocol_errors = sharded_report.protocol_errors;
    if (sharded_report.replay.records_submitted != report.engine.submitted ||
        protocol_errors != 0) {
      std::cerr << "sharded pass lost records ("
                << sharded_report.replay.records_submitted << "/"
                << report.engine.submitted << ", " << protocol_errors
                << " protocol errors)\n";
      return 1;
    }
  }

  // Multi-process pass: N real shard-serve processes (spawned from the
  // installed CLI binary, scoring the same published model) fed by a
  // shard-aware client. Measures the full process-isolation tax: fork/exec,
  // per-process engines, kHello handshakes, and N loopback streams.
  double multiproc_records_per_sec = 0.0;
  double multiproc_speedup = 0.0;
  if (multiproc) {
    const auto proc_dir =
        (std::filesystem::temp_directory_path() / "mfpa-bench-multiproc")
            .string();
    std::filesystem::remove_all(proc_dir);
    std::filesystem::create_directories(proc_dir);
    std::vector<net::ShardProcessSpec> specs;
    for (std::size_t k = 0; k < shards; ++k) {
      const std::string tag = "shard-" + std::to_string(k);
      net::ShardProcessSpec spec;
      spec.port_file = proc_dir + "/" + tag + ".port";
      spec.log_file = proc_dir + "/" + tag + ".log";
      spec.argv = {MFPA_CLI_BINARY,
                   "shard-serve",
                   "--shard-index=" + std::to_string(k),
                   "--shard-count=" + std::to_string(shards),
                   "--registry=" + registry_dir,
                   "--port-file=" + spec.port_file,
                   "--batch=" + std::to_string(max_batch)};
      specs.push_back(std::move(spec));
    }
    net::ShardProcessSupervisor procs(std::move(specs));
    procs.wait_ready(std::chrono::minutes(2));
    net::ShardedClientConfig client_config;
    client_config.ports = procs.ports();
    client_config.model_version = static_cast<std::uint32_t>(version);
    net::ShardedClient client(client_config);

    const auto start = std::chrono::steady_clock::now();
    for (const auto& arrival : replayer.arrivals()) {
      client.send_record(arrival.drive_id, arrival.vendor, *arrival.record);
    }
    const net::FlushAck ack = client.sync();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    client.close();
    procs.terminate_all();
    if (ack.records_processed + ack.shed != replayer.total_records()) {
      std::cerr << "multiproc pass lost records (" << ack.records_processed
                << " + " << ack.shed << " shed != " << replayer.total_records()
                << ")\n";
      return 1;
    }
    multiproc_records_per_sec =
        wall > 0 ? static_cast<double>(replayer.total_records()) / wall : 0.0;
    multiproc_speedup = report.records_per_sec > 0
                            ? multiproc_records_per_sec / report.records_per_sec
                            : 0.0;
    std::filesystem::remove_all(proc_dir);
  }

  const double mean_batch =
      report.engine.batches == 0
          ? 0.0
          : static_cast<double>(report.engine.records_processed) /
                static_cast<double>(report.engine.batches);
  TablePrinter table({"metric", "value"});
  table.add_row({"flat inference", flat ? "on" : "off"});
  table.add_row({"quantized inference", quantized ? "on" : "off"});
  table.add_row({"records", std::to_string(report.engine.submitted)});
  table.add_row({"wall seconds", format_double(report.wall_seconds, 3)});
  table.add_row({"records/sec",
                 format_with_commas(
                     static_cast<long long>(report.records_per_sec))});
  if (durable) {
    table.add_row({"durable records/sec",
                   format_with_commas(
                       static_cast<long long>(durable_records_per_sec))});
  }
  if (sharded) {
    table.add_row({"shards", std::to_string(shards)});
    table.add_row({"sharded records/sec",
                   format_with_commas(
                       static_cast<long long>(sharded_records_per_sec))});
    table.add_row({"sharded latency p99 (us)",
                   format_double(sharded_latency_p99_us, 1)});
    table.add_row({"sharded speedup", format_double(sharded_speedup, 2)});
  }
  if (multiproc) {
    table.add_row({"multiproc records/sec",
                   format_with_commas(
                       static_cast<long long>(multiproc_records_per_sec))});
    table.add_row({"multiproc speedup", format_double(multiproc_speedup, 2)});
  }
  table.add_row({"micro-batches", std::to_string(report.engine.batches)});
  table.add_row({"mean batch size", format_double(mean_batch, 1)});
  table.add_row({"max queue depth",
                 std::to_string(report.engine.max_queue_depth)});
  table.add_row({"latency p50 (us)",
                 format_double(report.engine.latency_us.quantile(0.5), 1)});
  table.add_row({"latency p99 (us)",
                 format_double(report.engine.latency_us.quantile(0.99), 1)});
  table.add_row({"rows scored", std::to_string(report.engine.rows_scored)});
  table.add_row({"alerts", std::to_string(report.engine.alerts)});
  table.add_row({"drive TPR", format_percent(report.drives.drive_tpr())});
  table.add_row({"drive FPR", format_percent(report.drives.drive_fpr())});
  table.print(std::cout);

  std::ofstream json(out_path, std::ios::trunc);
  if (!json) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"serving_replay\",\n"
       << "  \"scenario\": \"" << args.scenario << "\",\n"
       << "  \"seed\": " << args.seed << ",\n"
       << "  \"algorithm\": \"RF\",\n"
       << "  \"flat_inference\": " << (flat ? "true" : "false") << ",\n"
       << "  \"quantized_inference\": " << (quantized ? "true" : "false")
       << ",\n"
       << "  \"simd\": \"" << ml::to_string(ml::active_simd_level()) << "\",\n"
       << "  \"max_batch\": " << max_batch << ",\n"
       << "  \"records\": " << report.engine.submitted << ",\n"
       << "  \"days\": " << report.days_replayed << ",\n"
       << "  \"wall_seconds\": " << report.wall_seconds << ",\n"
       << "  \"records_per_sec\": " << report.records_per_sec << ",\n";
  if (durable) {
    json << "  \"durable_records_per_sec\": " << durable_records_per_sec
         << ",\n";
  }
  if (sharded) {
    json << "  \"shards\": " << shards << ",\n"
         << "  \"sharded_records_per_sec\": " << sharded_records_per_sec
         << ",\n"
         << "  \"sharded_latency_p99_us\": " << sharded_latency_p99_us << ",\n"
         << "  \"sharded_speedup\": " << sharded_speedup << ",\n"
         << "  \"net_protocol_errors\": " << protocol_errors << ",\n";
  }
  if (multiproc) {
    json << "  \"multiproc_records_per_sec\": " << multiproc_records_per_sec
         << ",\n"
         << "  \"multiproc_speedup\": " << multiproc_speedup << ",\n";
  }
  json
       << "  \"micro_batches\": " << report.engine.batches << ",\n"
       << "  \"mean_batch_size\": " << mean_batch << ",\n"
       << "  \"max_queue_depth\": " << report.engine.max_queue_depth << ",\n"
       << "  \"latency_p50_us\": " << report.engine.latency_us.quantile(0.5)
       << ",\n"
       << "  \"latency_p99_us\": " << report.engine.latency_us.quantile(0.99)
       << ",\n"
       << "  \"rows_scored\": " << report.engine.rows_scored << ",\n"
       << "  \"synthetic_rows\": " << report.engine.synthetic_rows << ",\n"
       << "  \"alerts\": " << report.engine.alerts << ",\n"
       << "  \"drives_quarantined\": " << report.store.drives_quarantined
       << ",\n"
       << "  \"drive_tpr\": " << report.drives.drive_tpr() << ",\n"
       << "  \"drive_fpr\": " << report.drives.drive_fpr() << ",\n"
       // The full registry snapshot, in the same mfpa.metrics.v1 schema that
       // `mfpa serve-replay --metrics-out` writes (CI diffs both).
       << "  \"metrics\": " << obs::to_json(obs::registry().snapshot()) << "\n"
       << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
