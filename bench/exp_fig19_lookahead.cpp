// Fig. 19 reproduction: TPR of a fixed MFPA model probed at increasing
// lookahead distances N (days between the scored observation and the actual
// failure). Paper: ~89% TPR within 5 days, decaying to 55.66% at N = 20.
#include <iostream>

#include "bench_common.hpp"
#include "core/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args, "=== Fig. 19: lookahead window ===");

  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = args.seed;
  core::MfpaPipeline pipeline(config);
  const auto report = pipeline.run(world.telemetry, world.tickets);
  std::cout << "base model: TPR " << format_percent(report.cm.tpr()) << " FPR "
            << format_percent(report.cm.fpr()) << " at threshold "
            << format_double(report.threshold, 3) << "\n\n";

  std::vector<sim::DriveTimeSeries> vendor0;
  for (const auto& s : world.telemetry) {
    if (s.vendor == 0) vendor0.push_back(s);
  }
  const core::Preprocessor pre;
  const auto drives = pre.process(vendor0);
  const auto builder = pipeline.make_builder();

  TablePrinter table({"N (days before failure)", "samples", "TPR", "bar"});
  for (int n = 1; n <= 21; n += (n < 8 ? 1 : 2)) {
    const auto ds = builder.build_positives_at_distance(drives, n, n + 1);
    if (ds.empty()) {
      table.add_row({std::to_string(n), "0", "n/a", ""});
      continue;
    }
    const auto scores = pipeline.score(ds);
    std::size_t hit = 0;
    for (double s : scores) hit += s >= pipeline.threshold();
    const double tpr = static_cast<double>(hit) / static_cast<double>(ds.size());
    table.add_row({std::to_string(n), std::to_string(ds.size()),
                   format_percent(tpr),
                   std::string(static_cast<std::size_t>(tpr * 50.0), '#')});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: high TPR within ~5 days, monotone decay, about"
               " half the detections left by N = 20.\n";
  return 0;
}
