// Extension experiment: periodic model iteration (the paper's deployment
// note — "The model is iterated every two months and pushed to the user").
// Replays the deployment three ways: never retrain (the Fig. 12/16 drift
// baseline), the paper's two-month cadence, and a reactive FPR trip wire,
// and shows that iteration absorbs the drift the frozen model accumulates.
#include <iostream>

#include "bench_common.hpp"
#include "core/retraining.hpp"

int main(int argc, char** argv) {
  using namespace mfpa;
  const auto args = bench::parse_args(argc, argv);
  bench::World world(args);
  bench::print_world_banner(world, args,
                            "=== Model iteration (deployment replay) ===");

  core::MfpaConfig config;
  config.vendor = 0;
  config.seed = args.seed;

  struct Variant {
    const char* label;
    core::RetrainingPolicy policy;
  };
  std::vector<Variant> variants;
  {
    core::RetrainingPolicy never;
    never.enabled = false;
    variants.push_back({"frozen (never retrain)", never});
    core::RetrainingPolicy cadence;
    cadence.cadence_months = 2;
    cadence.fpr_trip_wire = 0.0;
    variants.push_back({"2-month cadence (paper)", cadence});
    core::RetrainingPolicy reactive;
    reactive.cadence_months = 100;
    reactive.fpr_trip_wire = 0.03;
    variants.push_back({"reactive (FPR > 3%)", reactive});
  }

  const DayIndex train_end = 240;
  for (const auto& variant : variants) {
    core::RetrainingScheduler scheduler(config, variant.policy);
    const auto months = scheduler.run(world.telemetry, world.tickets, train_end);
    print_section(std::cout, variant.label);
    TablePrinter table({"month", "model age", "samples", "TPR", "FPR",
                        "refreshed after"});
    for (const auto& m : months) {
      table.add_row({std::to_string(m.month), std::to_string(m.model_age_months),
                     std::to_string(m.cm.total()), format_percent(m.cm.tpr()),
                     format_percent(m.cm.fpr()),
                     m.retrained_after ? "yes" : ""});
    }
    table.print(std::cout);
    std::cout << "model refreshes shipped: " << scheduler.retrain_count()
              << "\n";
  }
  std::cout << "\nExpected shape: the frozen model's FPR creeps up with"
               " deployment age (Fig. 12/16); both iteration policies hold"
               " it down at the cost of periodic refreshes.\n";
  return 0;
}
