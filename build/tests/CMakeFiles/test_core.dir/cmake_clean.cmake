file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_availability.cpp.o"
  "CMakeFiles/test_core.dir/core/test_availability.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cost_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_failure_time.cpp.o"
  "CMakeFiles/test_core.dir/core/test_failure_time.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_feature_groups.cpp.o"
  "CMakeFiles/test_core.dir/core/test_feature_groups.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_health_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_health_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mfpa_pipeline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mfpa_pipeline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_online_predictor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_online_predictor.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_preprocess.cpp.o"
  "CMakeFiles/test_core.dir/core/test_preprocess.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_retraining.cpp.o"
  "CMakeFiles/test_core.dir/core/test_retraining.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_sample_builder.cpp.o"
  "CMakeFiles/test_core.dir/core/test_sample_builder.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_streaming.cpp.o"
  "CMakeFiles/test_core.dir/core/test_streaming.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
