
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_availability.cpp" "tests/CMakeFiles/test_core.dir/core/test_availability.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_availability.cpp.o.d"
  "/root/repo/tests/core/test_cost_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cost_model.cpp.o.d"
  "/root/repo/tests/core/test_failure_time.cpp" "tests/CMakeFiles/test_core.dir/core/test_failure_time.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_failure_time.cpp.o.d"
  "/root/repo/tests/core/test_feature_groups.cpp" "tests/CMakeFiles/test_core.dir/core/test_feature_groups.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_feature_groups.cpp.o.d"
  "/root/repo/tests/core/test_health_report.cpp" "tests/CMakeFiles/test_core.dir/core/test_health_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_health_report.cpp.o.d"
  "/root/repo/tests/core/test_mfpa_pipeline.cpp" "tests/CMakeFiles/test_core.dir/core/test_mfpa_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_mfpa_pipeline.cpp.o.d"
  "/root/repo/tests/core/test_online_predictor.cpp" "tests/CMakeFiles/test_core.dir/core/test_online_predictor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_online_predictor.cpp.o.d"
  "/root/repo/tests/core/test_preprocess.cpp" "tests/CMakeFiles/test_core.dir/core/test_preprocess.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_preprocess.cpp.o.d"
  "/root/repo/tests/core/test_retraining.cpp" "tests/CMakeFiles/test_core.dir/core/test_retraining.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_retraining.cpp.o.d"
  "/root/repo/tests/core/test_sample_builder.cpp" "tests/CMakeFiles/test_core.dir/core/test_sample_builder.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sample_builder.cpp.o.d"
  "/root/repo/tests/core/test_streaming.cpp" "tests/CMakeFiles/test_core.dir/core/test_streaming.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/mfpa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mfpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mfpa_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mfpa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
