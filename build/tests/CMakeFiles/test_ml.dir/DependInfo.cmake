
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_calibration.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_calibration.cpp.o.d"
  "/root/repo/tests/ml/test_classifier_contract.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_classifier_contract.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_classifier_contract.cpp.o.d"
  "/root/repo/tests/ml/test_cnn_lstm.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_cnn_lstm.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_cnn_lstm.cpp.o.d"
  "/root/repo/tests/ml/test_cross_validation.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_cross_validation.cpp.o.d"
  "/root/repo/tests/ml/test_ensembles.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_ensembles.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_ensembles.cpp.o.d"
  "/root/repo/tests/ml/test_feature_selection.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_feature_selection.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_feature_selection.cpp.o.d"
  "/root/repo/tests/ml/test_grid_search.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_grid_search.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_grid_search.cpp.o.d"
  "/root/repo/tests/ml/test_isolation_forest.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_isolation_forest.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_isolation_forest.cpp.o.d"
  "/root/repo/tests/ml/test_linear_models.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_linear_models.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_linear_models.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_naive_bayes.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_naive_bayes.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_naive_bayes.cpp.o.d"
  "/root/repo/tests/ml/test_properties.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_properties.cpp.o.d"
  "/root/repo/tests/ml/test_sampler.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_sampler.cpp.o.d"
  "/root/repo/tests/ml/test_serialize.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_serialize.cpp.o.d"
  "/root/repo/tests/ml/test_tree.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_tree.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/mfpa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mfpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mfpa_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mfpa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
