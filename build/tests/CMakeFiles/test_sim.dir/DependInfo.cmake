
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_catalog.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_catalog.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_catalog.cpp.o.d"
  "/root/repo/tests/sim/test_event_model.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_event_model.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event_model.cpp.o.d"
  "/root/repo/tests/sim/test_failure_model.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_failure_model.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_failure_model.cpp.o.d"
  "/root/repo/tests/sim/test_fleet.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_fleet.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_fleet.cpp.o.d"
  "/root/repo/tests/sim/test_smart_model.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_smart_model.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_smart_model.cpp.o.d"
  "/root/repo/tests/sim/test_telemetry_io.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_telemetry_io.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_telemetry_io.cpp.o.d"
  "/root/repo/tests/sim/test_usage_model.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_usage_model.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_usage_model.cpp.o.d"
  "/root/repo/tests/sim/test_validate.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_validate.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/mfpa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mfpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mfpa_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mfpa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
