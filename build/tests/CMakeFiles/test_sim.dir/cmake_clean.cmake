file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_catalog.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_catalog.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_event_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_event_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_failure_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_failure_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_fleet.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_fleet.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_smart_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_smart_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_telemetry_io.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_telemetry_io.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_usage_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_usage_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_validate.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_validate.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
