
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_csv.cpp" "tests/CMakeFiles/test_common.dir/common/test_csv.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_csv.cpp.o.d"
  "/root/repo/tests/common/test_date.cpp" "tests/CMakeFiles/test_common.dir/common/test_date.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_date.cpp.o.d"
  "/root/repo/tests/common/test_progress.cpp" "tests/CMakeFiles/test_common.dir/common/test_progress.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_progress.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_string_util.cpp" "tests/CMakeFiles/test_common.dir/common/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_string_util.cpp.o.d"
  "/root/repo/tests/common/test_table_printer.cpp" "tests/CMakeFiles/test_common.dir/common/test_table_printer.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_table_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/mfpa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mfpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mfpa_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mfpa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
