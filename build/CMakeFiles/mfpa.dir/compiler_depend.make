# Empty compiler generated dependencies file for mfpa.
# This may be replaced when dependencies are built.
