file(REMOVE_RECURSE
  "CMakeFiles/mfpa.dir/tools/mfpa_main.cpp.o"
  "CMakeFiles/mfpa.dir/tools/mfpa_main.cpp.o.d"
  "mfpa"
  "mfpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
