# Empty dependencies file for exp_cost_analysis.
# This may be replaced when dependencies are built.
