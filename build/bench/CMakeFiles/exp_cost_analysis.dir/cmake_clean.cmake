file(REMOVE_RECURSE
  "CMakeFiles/exp_cost_analysis.dir/exp_cost_analysis.cpp.o"
  "CMakeFiles/exp_cost_analysis.dir/exp_cost_analysis.cpp.o.d"
  "exp_cost_analysis"
  "exp_cost_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cost_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
