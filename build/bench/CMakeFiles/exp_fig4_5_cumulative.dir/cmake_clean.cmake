file(REMOVE_RECURSE
  "CMakeFiles/exp_fig4_5_cumulative.dir/exp_fig4_5_cumulative.cpp.o"
  "CMakeFiles/exp_fig4_5_cumulative.dir/exp_fig4_5_cumulative.cpp.o.d"
  "exp_fig4_5_cumulative"
  "exp_fig4_5_cumulative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig4_5_cumulative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
