# Empty dependencies file for exp_fig4_5_cumulative.
# This may be replaced when dependencies are built.
