# Empty dependencies file for micro_ml_kernels.
# This may be replaced when dependencies are built.
