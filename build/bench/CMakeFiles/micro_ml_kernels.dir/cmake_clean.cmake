file(REMOVE_RECURSE
  "CMakeFiles/micro_ml_kernels.dir/micro_ml_kernels.cpp.o"
  "CMakeFiles/micro_ml_kernels.dir/micro_ml_kernels.cpp.o.d"
  "micro_ml_kernels"
  "micro_ml_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ml_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
