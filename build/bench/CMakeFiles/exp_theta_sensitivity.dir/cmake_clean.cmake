file(REMOVE_RECURSE
  "CMakeFiles/exp_theta_sensitivity.dir/exp_theta_sensitivity.cpp.o"
  "CMakeFiles/exp_theta_sensitivity.dir/exp_theta_sensitivity.cpp.o.d"
  "exp_theta_sensitivity"
  "exp_theta_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_theta_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
