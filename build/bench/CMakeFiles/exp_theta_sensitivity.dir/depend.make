# Empty dependencies file for exp_theta_sensitivity.
# This may be replaced when dependencies are built.
