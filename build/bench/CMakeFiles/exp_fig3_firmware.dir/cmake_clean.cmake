file(REMOVE_RECURSE
  "CMakeFiles/exp_fig3_firmware.dir/exp_fig3_firmware.cpp.o"
  "CMakeFiles/exp_fig3_firmware.dir/exp_fig3_firmware.cpp.o.d"
  "exp_fig3_firmware"
  "exp_fig3_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig3_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
