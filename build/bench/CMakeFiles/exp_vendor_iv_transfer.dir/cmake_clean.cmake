file(REMOVE_RECURSE
  "CMakeFiles/exp_vendor_iv_transfer.dir/exp_vendor_iv_transfer.cpp.o"
  "CMakeFiles/exp_vendor_iv_transfer.dir/exp_vendor_iv_transfer.cpp.o.d"
  "exp_vendor_iv_transfer"
  "exp_vendor_iv_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_vendor_iv_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
