# Empty dependencies file for exp_vendor_iv_transfer.
# This may be replaced when dependencies are built.
