file(REMOVE_RECURSE
  "CMakeFiles/exp_fig12_16_time_periods.dir/exp_fig12_16_time_periods.cpp.o"
  "CMakeFiles/exp_fig12_16_time_periods.dir/exp_fig12_16_time_periods.cpp.o.d"
  "exp_fig12_16_time_periods"
  "exp_fig12_16_time_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig12_16_time_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
