# Empty compiler generated dependencies file for exp_fig12_16_time_periods.
# This may be replaced when dependencies are built.
