# Empty dependencies file for exp_table6_dataset.
# This may be replaced when dependencies are built.
