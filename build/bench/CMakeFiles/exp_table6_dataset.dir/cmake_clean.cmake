file(REMOVE_RECURSE
  "CMakeFiles/exp_table6_dataset.dir/exp_table6_dataset.cpp.o"
  "CMakeFiles/exp_table6_dataset.dir/exp_table6_dataset.cpp.o.d"
  "exp_table6_dataset"
  "exp_table6_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table6_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
