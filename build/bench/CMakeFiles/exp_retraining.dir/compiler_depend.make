# Empty compiler generated dependencies file for exp_retraining.
# This may be replaced when dependencies are built.
