file(REMOVE_RECURSE
  "CMakeFiles/exp_retraining.dir/exp_retraining.cpp.o"
  "CMakeFiles/exp_retraining.dir/exp_retraining.cpp.o.d"
  "exp_retraining"
  "exp_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
