# Empty dependencies file for exp_retraining.
# This may be replaced when dependencies are built.
