file(REMOVE_RECURSE
  "CMakeFiles/exp_availability.dir/exp_availability.cpp.o"
  "CMakeFiles/exp_availability.dir/exp_availability.cpp.o.d"
  "exp_availability"
  "exp_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
