# Empty dependencies file for exp_availability.
# This may be replaced when dependencies are built.
