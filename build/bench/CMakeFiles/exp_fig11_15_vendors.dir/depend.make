# Empty dependencies file for exp_fig11_15_vendors.
# This may be replaced when dependencies are built.
