file(REMOVE_RECURSE
  "CMakeFiles/exp_fig11_15_vendors.dir/exp_fig11_15_vendors.cpp.o"
  "CMakeFiles/exp_fig11_15_vendors.dir/exp_fig11_15_vendors.cpp.o.d"
  "exp_fig11_15_vendors"
  "exp_fig11_15_vendors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig11_15_vendors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
