file(REMOVE_RECURSE
  "CMakeFiles/exp_table1_rasrf.dir/exp_table1_rasrf.cpp.o"
  "CMakeFiles/exp_table1_rasrf.dir/exp_table1_rasrf.cpp.o.d"
  "exp_table1_rasrf"
  "exp_table1_rasrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table1_rasrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
