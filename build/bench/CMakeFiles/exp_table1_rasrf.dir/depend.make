# Empty dependencies file for exp_table1_rasrf.
# This may be replaced when dependencies are built.
