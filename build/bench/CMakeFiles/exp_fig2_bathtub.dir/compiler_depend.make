# Empty compiler generated dependencies file for exp_fig2_bathtub.
# This may be replaced when dependencies are built.
