file(REMOVE_RECURSE
  "CMakeFiles/exp_fig2_bathtub.dir/exp_fig2_bathtub.cpp.o"
  "CMakeFiles/exp_fig2_bathtub.dir/exp_fig2_bathtub.cpp.o.d"
  "exp_fig2_bathtub"
  "exp_fig2_bathtub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig2_bathtub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
