# Empty compiler generated dependencies file for exp_calibration.
# This may be replaced when dependencies are built.
