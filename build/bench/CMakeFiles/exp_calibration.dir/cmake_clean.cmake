file(REMOVE_RECURSE
  "CMakeFiles/exp_calibration.dir/exp_calibration.cpp.o"
  "CMakeFiles/exp_calibration.dir/exp_calibration.cpp.o.d"
  "exp_calibration"
  "exp_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
