# Empty dependencies file for exp_fig18_prior_work.
# This may be replaced when dependencies are built.
