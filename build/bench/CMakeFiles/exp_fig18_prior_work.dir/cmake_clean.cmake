file(REMOVE_RECURSE
  "CMakeFiles/exp_fig18_prior_work.dir/exp_fig18_prior_work.cpp.o"
  "CMakeFiles/exp_fig18_prior_work.dir/exp_fig18_prior_work.cpp.o.d"
  "exp_fig18_prior_work"
  "exp_fig18_prior_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig18_prior_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
