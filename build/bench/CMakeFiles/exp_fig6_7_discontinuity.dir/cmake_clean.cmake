file(REMOVE_RECURSE
  "CMakeFiles/exp_fig6_7_discontinuity.dir/exp_fig6_7_discontinuity.cpp.o"
  "CMakeFiles/exp_fig6_7_discontinuity.dir/exp_fig6_7_discontinuity.cpp.o.d"
  "exp_fig6_7_discontinuity"
  "exp_fig6_7_discontinuity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig6_7_discontinuity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
