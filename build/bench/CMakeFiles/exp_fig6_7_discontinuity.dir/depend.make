# Empty dependencies file for exp_fig6_7_discontinuity.
# This may be replaced when dependencies are built.
