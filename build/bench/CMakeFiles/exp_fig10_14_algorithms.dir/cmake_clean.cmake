file(REMOVE_RECURSE
  "CMakeFiles/exp_fig10_14_algorithms.dir/exp_fig10_14_algorithms.cpp.o"
  "CMakeFiles/exp_fig10_14_algorithms.dir/exp_fig10_14_algorithms.cpp.o.d"
  "exp_fig10_14_algorithms"
  "exp_fig10_14_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig10_14_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
