# Empty compiler generated dependencies file for exp_fig10_14_algorithms.
# This may be replaced when dependencies are built.
