# Empty compiler generated dependencies file for exp_grid_search.
# This may be replaced when dependencies are built.
