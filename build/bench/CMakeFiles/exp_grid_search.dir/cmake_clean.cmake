file(REMOVE_RECURSE
  "CMakeFiles/exp_grid_search.dir/exp_grid_search.cpp.o"
  "CMakeFiles/exp_grid_search.dir/exp_grid_search.cpp.o.d"
  "exp_grid_search"
  "exp_grid_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_grid_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
