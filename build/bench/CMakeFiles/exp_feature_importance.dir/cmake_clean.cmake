file(REMOVE_RECURSE
  "CMakeFiles/exp_feature_importance.dir/exp_feature_importance.cpp.o"
  "CMakeFiles/exp_feature_importance.dir/exp_feature_importance.cpp.o.d"
  "exp_feature_importance"
  "exp_feature_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_feature_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
