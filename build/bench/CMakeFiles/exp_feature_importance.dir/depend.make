# Empty dependencies file for exp_feature_importance.
# This may be replaced when dependencies are built.
