file(REMOVE_RECURSE
  "CMakeFiles/exp_training_granularity.dir/exp_training_granularity.cpp.o"
  "CMakeFiles/exp_training_granularity.dir/exp_training_granularity.cpp.o.d"
  "exp_training_granularity"
  "exp_training_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_training_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
