
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_training_granularity.cpp" "bench/CMakeFiles/exp_training_granularity.dir/exp_training_granularity.cpp.o" "gcc" "bench/CMakeFiles/exp_training_granularity.dir/exp_training_granularity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/mfpa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mfpa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mfpa_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mfpa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
