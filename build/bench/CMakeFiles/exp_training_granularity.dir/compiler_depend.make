# Empty compiler generated dependencies file for exp_training_granularity.
# This may be replaced when dependencies are built.
