# Empty dependencies file for exp_fig20_overhead.
# This may be replaced when dependencies are built.
