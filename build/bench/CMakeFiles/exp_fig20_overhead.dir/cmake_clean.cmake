file(REMOVE_RECURSE
  "CMakeFiles/exp_fig20_overhead.dir/exp_fig20_overhead.cpp.o"
  "CMakeFiles/exp_fig20_overhead.dir/exp_fig20_overhead.cpp.o.d"
  "exp_fig20_overhead"
  "exp_fig20_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig20_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
