# Empty dependencies file for exp_fig9_13_feature_groups.
# This may be replaced when dependencies are built.
