file(REMOVE_RECURSE
  "CMakeFiles/exp_fig9_13_feature_groups.dir/exp_fig9_13_feature_groups.cpp.o"
  "CMakeFiles/exp_fig9_13_feature_groups.dir/exp_fig9_13_feature_groups.cpp.o.d"
  "exp_fig9_13_feature_groups"
  "exp_fig9_13_feature_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig9_13_feature_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
