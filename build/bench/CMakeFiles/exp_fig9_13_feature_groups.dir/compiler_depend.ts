# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_fig9_13_feature_groups.
