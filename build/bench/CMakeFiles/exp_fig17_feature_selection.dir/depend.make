# Empty dependencies file for exp_fig17_feature_selection.
# This may be replaced when dependencies are built.
