file(REMOVE_RECURSE
  "CMakeFiles/exp_fig19_lookahead.dir/exp_fig19_lookahead.cpp.o"
  "CMakeFiles/exp_fig19_lookahead.dir/exp_fig19_lookahead.cpp.o.d"
  "exp_fig19_lookahead"
  "exp_fig19_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig19_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
