file(REMOVE_RECURSE
  "CMakeFiles/mfpa_common.dir/csv.cpp.o"
  "CMakeFiles/mfpa_common.dir/csv.cpp.o.d"
  "CMakeFiles/mfpa_common.dir/date.cpp.o"
  "CMakeFiles/mfpa_common.dir/date.cpp.o.d"
  "CMakeFiles/mfpa_common.dir/progress.cpp.o"
  "CMakeFiles/mfpa_common.dir/progress.cpp.o.d"
  "CMakeFiles/mfpa_common.dir/rng.cpp.o"
  "CMakeFiles/mfpa_common.dir/rng.cpp.o.d"
  "CMakeFiles/mfpa_common.dir/stats.cpp.o"
  "CMakeFiles/mfpa_common.dir/stats.cpp.o.d"
  "CMakeFiles/mfpa_common.dir/string_util.cpp.o"
  "CMakeFiles/mfpa_common.dir/string_util.cpp.o.d"
  "CMakeFiles/mfpa_common.dir/table_printer.cpp.o"
  "CMakeFiles/mfpa_common.dir/table_printer.cpp.o.d"
  "libmfpa_common.a"
  "libmfpa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfpa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
