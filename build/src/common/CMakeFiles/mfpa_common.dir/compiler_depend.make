# Empty compiler generated dependencies file for mfpa_common.
# This may be replaced when dependencies are built.
