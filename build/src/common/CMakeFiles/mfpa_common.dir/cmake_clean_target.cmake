file(REMOVE_RECURSE
  "libmfpa_common.a"
)
