file(REMOVE_RECURSE
  "CMakeFiles/mfpa_core.dir/availability.cpp.o"
  "CMakeFiles/mfpa_core.dir/availability.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/cost_model.cpp.o"
  "CMakeFiles/mfpa_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/failure_time.cpp.o"
  "CMakeFiles/mfpa_core.dir/failure_time.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/feature_groups.cpp.o"
  "CMakeFiles/mfpa_core.dir/feature_groups.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/health_report.cpp.o"
  "CMakeFiles/mfpa_core.dir/health_report.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/mfpa.cpp.o"
  "CMakeFiles/mfpa_core.dir/mfpa.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/online_predictor.cpp.o"
  "CMakeFiles/mfpa_core.dir/online_predictor.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/preprocess.cpp.o"
  "CMakeFiles/mfpa_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/retraining.cpp.o"
  "CMakeFiles/mfpa_core.dir/retraining.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/sample_builder.cpp.o"
  "CMakeFiles/mfpa_core.dir/sample_builder.cpp.o.d"
  "CMakeFiles/mfpa_core.dir/streaming.cpp.o"
  "CMakeFiles/mfpa_core.dir/streaming.cpp.o.d"
  "libmfpa_core.a"
  "libmfpa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfpa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
