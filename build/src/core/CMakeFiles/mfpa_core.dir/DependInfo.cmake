
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/availability.cpp" "src/core/CMakeFiles/mfpa_core.dir/availability.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/availability.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/mfpa_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/failure_time.cpp" "src/core/CMakeFiles/mfpa_core.dir/failure_time.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/failure_time.cpp.o.d"
  "/root/repo/src/core/feature_groups.cpp" "src/core/CMakeFiles/mfpa_core.dir/feature_groups.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/feature_groups.cpp.o.d"
  "/root/repo/src/core/health_report.cpp" "src/core/CMakeFiles/mfpa_core.dir/health_report.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/health_report.cpp.o.d"
  "/root/repo/src/core/mfpa.cpp" "src/core/CMakeFiles/mfpa_core.dir/mfpa.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/mfpa.cpp.o.d"
  "/root/repo/src/core/online_predictor.cpp" "src/core/CMakeFiles/mfpa_core.dir/online_predictor.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/online_predictor.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/mfpa_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/retraining.cpp" "src/core/CMakeFiles/mfpa_core.dir/retraining.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/retraining.cpp.o.d"
  "/root/repo/src/core/sample_builder.cpp" "src/core/CMakeFiles/mfpa_core.dir/sample_builder.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/sample_builder.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/mfpa_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/mfpa_core.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mfpa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mfpa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/mfpa_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
