# Empty dependencies file for mfpa_core.
# This may be replaced when dependencies are built.
