file(REMOVE_RECURSE
  "libmfpa_core.a"
)
