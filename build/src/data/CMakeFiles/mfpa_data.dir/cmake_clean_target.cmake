file(REMOVE_RECURSE
  "libmfpa_data.a"
)
