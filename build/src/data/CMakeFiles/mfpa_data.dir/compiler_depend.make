# Empty compiler generated dependencies file for mfpa_data.
# This may be replaced when dependencies are built.
