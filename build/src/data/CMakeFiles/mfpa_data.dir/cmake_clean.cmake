file(REMOVE_RECURSE
  "CMakeFiles/mfpa_data.dir/dataset.cpp.o"
  "CMakeFiles/mfpa_data.dir/dataset.cpp.o.d"
  "CMakeFiles/mfpa_data.dir/label_encoder.cpp.o"
  "CMakeFiles/mfpa_data.dir/label_encoder.cpp.o.d"
  "CMakeFiles/mfpa_data.dir/matrix.cpp.o"
  "CMakeFiles/mfpa_data.dir/matrix.cpp.o.d"
  "CMakeFiles/mfpa_data.dir/scaler.cpp.o"
  "CMakeFiles/mfpa_data.dir/scaler.cpp.o.d"
  "libmfpa_data.a"
  "libmfpa_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfpa_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
