
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/mfpa_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/mfpa_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/label_encoder.cpp" "src/data/CMakeFiles/mfpa_data.dir/label_encoder.cpp.o" "gcc" "src/data/CMakeFiles/mfpa_data.dir/label_encoder.cpp.o.d"
  "/root/repo/src/data/matrix.cpp" "src/data/CMakeFiles/mfpa_data.dir/matrix.cpp.o" "gcc" "src/data/CMakeFiles/mfpa_data.dir/matrix.cpp.o.d"
  "/root/repo/src/data/scaler.cpp" "src/data/CMakeFiles/mfpa_data.dir/scaler.cpp.o" "gcc" "src/data/CMakeFiles/mfpa_data.dir/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
