# Empty dependencies file for mfpa_sim.
# This may be replaced when dependencies are built.
