
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/catalog.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/catalog.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/catalog.cpp.o.d"
  "/root/repo/src/sim/event_model.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/event_model.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/event_model.cpp.o.d"
  "/root/repo/src/sim/failure_model.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/failure_model.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/failure_model.cpp.o.d"
  "/root/repo/src/sim/fleet.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/fleet.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/fleet.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/smart_model.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/smart_model.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/smart_model.cpp.o.d"
  "/root/repo/src/sim/telemetry_io.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/telemetry_io.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/telemetry_io.cpp.o.d"
  "/root/repo/src/sim/usage_model.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/usage_model.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/usage_model.cpp.o.d"
  "/root/repo/src/sim/validate.cpp" "src/sim/CMakeFiles/mfpa_sim.dir/validate.cpp.o" "gcc" "src/sim/CMakeFiles/mfpa_sim.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
