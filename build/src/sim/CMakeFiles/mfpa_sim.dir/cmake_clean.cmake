file(REMOVE_RECURSE
  "CMakeFiles/mfpa_sim.dir/catalog.cpp.o"
  "CMakeFiles/mfpa_sim.dir/catalog.cpp.o.d"
  "CMakeFiles/mfpa_sim.dir/event_model.cpp.o"
  "CMakeFiles/mfpa_sim.dir/event_model.cpp.o.d"
  "CMakeFiles/mfpa_sim.dir/failure_model.cpp.o"
  "CMakeFiles/mfpa_sim.dir/failure_model.cpp.o.d"
  "CMakeFiles/mfpa_sim.dir/fleet.cpp.o"
  "CMakeFiles/mfpa_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/mfpa_sim.dir/scenario.cpp.o"
  "CMakeFiles/mfpa_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/mfpa_sim.dir/smart_model.cpp.o"
  "CMakeFiles/mfpa_sim.dir/smart_model.cpp.o.d"
  "CMakeFiles/mfpa_sim.dir/telemetry_io.cpp.o"
  "CMakeFiles/mfpa_sim.dir/telemetry_io.cpp.o.d"
  "CMakeFiles/mfpa_sim.dir/usage_model.cpp.o"
  "CMakeFiles/mfpa_sim.dir/usage_model.cpp.o.d"
  "CMakeFiles/mfpa_sim.dir/validate.cpp.o"
  "CMakeFiles/mfpa_sim.dir/validate.cpp.o.d"
  "libmfpa_sim.a"
  "libmfpa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfpa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
