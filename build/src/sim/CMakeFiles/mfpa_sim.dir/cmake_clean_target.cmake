file(REMOVE_RECURSE
  "libmfpa_sim.a"
)
