file(REMOVE_RECURSE
  "libmfpa_cli.a"
)
