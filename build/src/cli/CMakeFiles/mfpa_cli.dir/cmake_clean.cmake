file(REMOVE_RECURSE
  "CMakeFiles/mfpa_cli.dir/cli.cpp.o"
  "CMakeFiles/mfpa_cli.dir/cli.cpp.o.d"
  "libmfpa_cli.a"
  "libmfpa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfpa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
