# Empty compiler generated dependencies file for mfpa_cli.
# This may be replaced when dependencies are built.
