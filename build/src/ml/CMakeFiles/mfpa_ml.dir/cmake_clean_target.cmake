file(REMOVE_RECURSE
  "libmfpa_ml.a"
)
