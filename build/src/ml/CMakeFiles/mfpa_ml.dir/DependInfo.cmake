
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/calibration.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/calibration.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/calibration.cpp.o.d"
  "/root/repo/src/ml/cnn_lstm.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/cnn_lstm.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/cnn_lstm.cpp.o.d"
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/factory.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/factory.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/factory.cpp.o.d"
  "/root/repo/src/ml/feature_selection.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/feature_selection.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/feature_selection.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/gbdt.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/gbdt.cpp.o.d"
  "/root/repo/src/ml/grid_search.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/grid_search.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/grid_search.cpp.o.d"
  "/root/repo/src/ml/isolation_forest.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/isolation_forest.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/isolation_forest.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/model.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/model.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/sampler.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/sampler.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/sampler.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/mfpa_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/mfpa_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mfpa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mfpa_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
