# Empty dependencies file for mfpa_ml.
# This may be replaced when dependencies are built.
