file(REMOVE_RECURSE
  "libmfpa_baselines.a"
)
