file(REMOVE_RECURSE
  "CMakeFiles/mfpa_baselines.dir/prior_work.cpp.o"
  "CMakeFiles/mfpa_baselines.dir/prior_work.cpp.o.d"
  "CMakeFiles/mfpa_baselines.dir/smart_threshold.cpp.o"
  "CMakeFiles/mfpa_baselines.dir/smart_threshold.cpp.o.d"
  "CMakeFiles/mfpa_baselines.dir/statistical.cpp.o"
  "CMakeFiles/mfpa_baselines.dir/statistical.cpp.o.d"
  "libmfpa_baselines.a"
  "libmfpa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfpa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
