# Empty compiler generated dependencies file for mfpa_baselines.
# This may be replaced when dependencies are built.
