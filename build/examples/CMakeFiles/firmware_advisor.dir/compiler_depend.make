# Empty compiler generated dependencies file for firmware_advisor.
# This may be replaced when dependencies are built.
