file(REMOVE_RECURSE
  "CMakeFiles/firmware_advisor.dir/firmware_advisor.cpp.o"
  "CMakeFiles/firmware_advisor.dir/firmware_advisor.cpp.o.d"
  "firmware_advisor"
  "firmware_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
