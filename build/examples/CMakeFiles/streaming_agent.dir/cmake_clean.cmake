file(REMOVE_RECURSE
  "CMakeFiles/streaming_agent.dir/streaming_agent.cpp.o"
  "CMakeFiles/streaming_agent.dir/streaming_agent.cpp.o.d"
  "streaming_agent"
  "streaming_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
