# Empty compiler generated dependencies file for streaming_agent.
# This may be replaced when dependencies are built.
