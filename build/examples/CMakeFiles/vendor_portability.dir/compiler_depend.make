# Empty compiler generated dependencies file for vendor_portability.
# This may be replaced when dependencies are built.
