file(REMOVE_RECURSE
  "CMakeFiles/vendor_portability.dir/vendor_portability.cpp.o"
  "CMakeFiles/vendor_portability.dir/vendor_portability.cpp.o.d"
  "vendor_portability"
  "vendor_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
