#!/usr/bin/env python3
"""Unit tests for the bench_compare.py perf-regression gate.

Exercises both schemas with synthetic inputs: identical runs must pass, a
20%-slower run must fail at the default 15% tolerance (the contract CI
relies on), and --update must refresh the baseline in place.
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402


GBENCH = {
    "context": {"executable": "micro_ml_kernels"},
    "benchmarks": [
        {"name": "BM_FlatForestPredictRF/flat:0", "run_type": "iteration",
         "real_time": 14000000.0, "cpu_time": 13900000.0},
        {"name": "BM_FlatForestPredictRF/flat:1", "run_type": "iteration",
         "real_time": 7000000.0, "cpu_time": 6900000.0},
        {"name": "BM_FlatForestPredictRF/flat:1_mean", "run_type": "aggregate",
         "real_time": 7100000.0},
    ],
}

SERVING = {
    "bench": "serving_replay",
    "scenario": "small",
    "records_per_sec": 250000,
    "latency_p99_us": 21000.0,
}


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path

    def run_main(self, baseline, current, *extra):
        return bench_compare.main(
            ["--baseline", baseline, "--current", current, *extra])

    def test_identical_gbench_passes(self):
        base = self.write("base.json", GBENCH)
        cur = self.write("cur.json", GBENCH)
        self.assertEqual(self.run_main(base, cur), 0)

    def test_twenty_percent_slower_fails_default_tolerance(self):
        base = self.write("base.json", GBENCH)
        slower = copy.deepcopy(GBENCH)
        for entry in slower["benchmarks"]:
            entry["real_time"] *= 1.20
        cur = self.write("cur.json", slower)
        self.assertEqual(self.run_main(base, cur), 1)

    def test_twenty_percent_slower_passes_loose_tolerance(self):
        base = self.write("base.json", GBENCH)
        slower = copy.deepcopy(GBENCH)
        for entry in slower["benchmarks"]:
            entry["real_time"] *= 1.20
        cur = self.write("cur.json", slower)
        self.assertEqual(self.run_main(base, cur, "--tolerance", "0.5"), 0)

    def test_faster_run_passes(self):
        base = self.write("base.json", GBENCH)
        faster = copy.deepcopy(GBENCH)
        for entry in faster["benchmarks"]:
            entry["real_time"] *= 0.5
        cur = self.write("cur.json", faster)
        self.assertEqual(self.run_main(base, cur), 0)

    def test_aggregate_rows_are_ignored(self):
        base = self.write("base.json", GBENCH)
        doc = copy.deepcopy(GBENCH)
        doc["benchmarks"][2]["real_time"] *= 10  # aggregate: must not gate
        cur = self.write("cur.json", doc)
        self.assertEqual(self.run_main(base, cur), 0)

    def test_serving_throughput_drop_fails(self):
        base = self.write("base.json", SERVING)
        slower = dict(SERVING, records_per_sec=250000 * 0.8)
        cur = self.write("cur.json", slower)
        self.assertEqual(self.run_main(base, cur), 1)

    def test_serving_throughput_gain_passes(self):
        base = self.write("base.json", SERVING)
        faster = dict(SERVING, records_per_sec=250000 * 1.3)
        cur = self.write("cur.json", faster)
        self.assertEqual(self.run_main(base, cur), 0)

    def test_durable_throughput_drop_fails(self):
        durable = dict(SERVING, durable_records_per_sec=200000)
        base = self.write("base.json", durable)
        slower = dict(durable, durable_records_per_sec=200000 * 0.8)
        cur = self.write("cur.json", slower)
        self.assertEqual(self.run_main(base, cur), 1)

    def test_sharded_throughput_drop_fails(self):
        sharded = dict(SERVING, sharded_records_per_sec=500000,
                       sharded_speedup=2.0)
        base = self.write("base.json", sharded)
        slower = dict(sharded, sharded_records_per_sec=500000 * 0.8,
                      sharded_speedup=1.6)
        cur = self.write("cur.json", slower)
        self.assertEqual(self.run_main(base, cur), 1)

    def test_sharded_latency_rise_fails(self):
        # Latency keys gate in the opposite direction: higher is worse.
        sharded = dict(SERVING, sharded_latency_p99_us=20000.0)
        base = self.write("base.json", sharded)
        worse = dict(sharded, sharded_latency_p99_us=20000.0 * 1.2)
        cur = self.write("cur.json", worse)
        self.assertEqual(self.run_main(base, cur), 1)

    def test_sharded_latency_drop_passes(self):
        sharded = dict(SERVING, sharded_latency_p99_us=20000.0)
        base = self.write("base.json", sharded)
        better = dict(sharded, sharded_latency_p99_us=20000.0 * 0.5)
        cur = self.write("cur.json", better)
        self.assertEqual(self.run_main(base, cur), 0)

    def test_sharded_keys_are_optional_both_ways(self):
        # A --no-sharded run vs a baseline with the sharded pass (and vice
        # versa) skips the unmatched keys rather than failing.
        plain = self.write("plain.json", SERVING)
        sharded = self.write(
            "sharded.json",
            dict(SERVING, sharded_records_per_sec=500000,
                 sharded_latency_p99_us=20000.0, sharded_speedup=2.0))
        self.assertEqual(self.run_main(plain, sharded), 0)
        self.assertEqual(self.run_main(sharded, plain), 0)

    def test_malformed_sharded_key_is_rejected(self):
        base = self.write(
            "base.json", dict(SERVING, sharded_latency_p99_us="slow"))
        cur = self.write("cur.json", SERVING)
        with self.assertRaises(SystemExit):
            self.run_main(base, cur)

    def test_update_preserves_sharded_keys(self):
        sharded = dict(SERVING, sharded_records_per_sec=500000,
                       sharded_latency_p99_us=20000.0, sharded_speedup=2.0)
        base = self.write("base.json", sharded)
        fresh = dict(SERVING, records_per_sec=300000)
        cur = self.write("cur.json", fresh)
        self.assertEqual(self.run_main(base, cur, "--update"), 0)
        with open(base, encoding="utf-8") as fh:
            merged = json.load(fh)
        self.assertEqual(merged["records_per_sec"], 300000)
        self.assertEqual(merged["sharded_records_per_sec"], 500000)
        self.assertEqual(merged["sharded_latency_p99_us"], 20000.0)

    def test_multiproc_throughput_drop_fails(self):
        multiproc = dict(SERVING, multiproc_records_per_sec=400000,
                         multiproc_speedup=1.6)
        base = self.write("base.json", multiproc)
        slower = dict(multiproc, multiproc_records_per_sec=400000 * 0.8,
                      multiproc_speedup=1.28)
        cur = self.write("cur.json", slower)
        self.assertEqual(self.run_main(base, cur), 1)

    def test_multiproc_keys_are_optional_both_ways(self):
        # A --no-multiproc run vs a baseline with the multi-process pass
        # (and vice versa) skips the unmatched keys rather than failing.
        plain = self.write("plain.json", SERVING)
        multiproc = self.write(
            "multiproc.json",
            dict(SERVING, multiproc_records_per_sec=400000,
                 multiproc_speedup=1.6))
        self.assertEqual(self.run_main(plain, multiproc), 0)
        self.assertEqual(self.run_main(multiproc, plain), 0)

    def test_malformed_multiproc_key_is_rejected(self):
        base = self.write(
            "base.json", dict(SERVING, multiproc_records_per_sec="fast"))
        cur = self.write("cur.json", SERVING)
        with self.assertRaises(SystemExit):
            self.run_main(base, cur)

    def test_update_preserves_multiproc_keys(self):
        multiproc = dict(SERVING, multiproc_records_per_sec=400000,
                         multiproc_speedup=1.6)
        base = self.write("base.json", multiproc)
        fresh = dict(SERVING, records_per_sec=300000)
        cur = self.write("cur.json", fresh)
        self.assertEqual(self.run_main(base, cur, "--update"), 0)
        with open(base, encoding="utf-8") as fh:
            merged = json.load(fh)
        self.assertEqual(merged["records_per_sec"], 300000)
        self.assertEqual(merged["multiproc_records_per_sec"], 400000)
        self.assertEqual(merged["multiproc_speedup"], 1.6)

    def test_durable_key_is_optional_both_ways(self):
        # Baseline without the durable pass vs a current run with it (and
        # vice versa): both directions skip the unmatched key, not fail.
        plain = self.write("plain.json", SERVING)
        durable = self.write(
            "durable.json", dict(SERVING, durable_records_per_sec=200000))
        self.assertEqual(self.run_main(plain, durable), 0)
        self.assertEqual(self.run_main(durable, plain), 0)

    def test_malformed_durable_key_is_rejected(self):
        base = self.write(
            "base.json", dict(SERVING, durable_records_per_sec="fast"))
        cur = self.write("cur.json", SERVING)
        with self.assertRaises(SystemExit):
            self.run_main(base, cur)

    def test_missing_benchmark_is_skipped_not_failed(self):
        base = self.write("base.json", GBENCH)
        subset = copy.deepcopy(GBENCH)
        subset["benchmarks"] = subset["benchmarks"][:1]
        cur = self.write("cur.json", subset)
        self.assertEqual(self.run_main(base, cur), 0)

    def test_update_overwrites_baseline(self):
        base = self.write("base.json", GBENCH)
        faster = copy.deepcopy(GBENCH)
        for entry in faster["benchmarks"]:
            entry["real_time"] *= 0.5
        cur = self.write("cur.json", faster)
        self.assertEqual(self.run_main(base, cur, "--update"), 0)
        with open(base, encoding="utf-8") as fh:
            self.assertEqual(json.load(fh), faster)

    def test_update_preserves_optional_serving_keys(self):
        # A baseline recorded with the durability pass, refreshed from a
        # --no-durable run: the fresh numbers win where present, but the
        # old durable_records_per_sec must survive the update.
        durable = dict(SERVING, durable_records_per_sec=200000)
        base = self.write("base.json", durable)
        fresh = dict(SERVING, records_per_sec=300000)
        cur = self.write("cur.json", fresh)
        self.assertEqual(self.run_main(base, cur, "--update"), 0)
        with open(base, encoding="utf-8") as fh:
            merged = json.load(fh)
        self.assertEqual(merged["records_per_sec"], 300000)
        self.assertEqual(merged["durable_records_per_sec"], 200000)

    def test_update_new_optional_key_replaces_old_value(self):
        base = self.write(
            "base.json", dict(SERVING, durable_records_per_sec=200000))
        cur = self.write(
            "cur.json", dict(SERVING, durable_records_per_sec=220000))
        self.assertEqual(self.run_main(base, cur, "--update"), 0)
        with open(base, encoding="utf-8") as fh:
            self.assertEqual(
                json.load(fh)["durable_records_per_sec"], 220000)

    def test_update_preserves_benchmarks_missing_from_partial_run(self):
        # A filtered re-run covering one benchmark must not drop the other
        # committed entries from the baseline.
        base = self.write("base.json", GBENCH)
        partial = copy.deepcopy(GBENCH)
        partial["benchmarks"] = [dict(partial["benchmarks"][0],
                                      real_time=10000000.0)]
        cur = self.write("cur.json", partial)
        self.assertEqual(self.run_main(base, cur, "--update"), 0)
        with open(base, encoding="utf-8") as fh:
            merged = json.load(fh)
        by_name = {e["name"]: e for e in merged["benchmarks"]
                   if e.get("run_type", "iteration") == "iteration"}
        self.assertEqual(
            by_name["BM_FlatForestPredictRF/flat:0"]["real_time"], 10000000.0)
        self.assertEqual(  # carried over from the old baseline
            by_name["BM_FlatForestPredictRF/flat:1"]["real_time"], 7000000.0)

    def test_update_without_existing_baseline_takes_current(self):
        cur = self.write("cur.json", SERVING)
        base = os.path.join(self.dir.name, "new_base.json")
        self.assertEqual(self.run_main(base, cur, "--update"), 0)
        with open(base, encoding="utf-8") as fh:
            self.assertEqual(json.load(fh), SERVING)

    def test_unreadable_input_is_a_usage_error(self):
        base = self.write("base.json", GBENCH)
        with self.assertRaises(SystemExit):
            self.run_main(base, os.path.join(self.dir.name, "missing.json"))

    def test_unrecognized_schema_is_rejected(self):
        base = self.write("base.json", {"something": "else"})
        cur = self.write("cur.json", GBENCH)
        with self.assertRaises(SystemExit):
            self.run_main(base, cur)


if __name__ == "__main__":
    unittest.main()
