#!/usr/bin/env python3
"""Perf-regression gate: compare a benchmark JSON against a committed baseline.

Two input schemas are understood, detected per file:

* google-benchmark JSON (micro_ml_kernels): every non-aggregate entry in
  `benchmarks` is compared by `name` on `real_time` — lower is better.
* serving-replay JSON (bench_serving, `"bench": "serving_replay"`): compared
  on `records_per_sec` — higher is better — plus any of the optional keys in
  SERVING_OPTIONAL_KEYS present in the file (the durability, sharded-loopback,
  and multi-process passes each contribute theirs when enabled;
  throughput/speedup keys are higher-is-better, latency keys
  lower-is-better).

A benchmark regresses when it is worse than the baseline by more than
`--tolerance` (default 0.15 = 15%). Any regression prints a table and exits
non-zero, so CI can gate on it. Baselines live in bench/baselines/ and are
refreshed deliberately with --update after an accepted perf change.

--update MERGES rather than overwrites: optional metrics present in the old
baseline but absent from the new run are carried over (a serving baseline's
`durable_records_per_sec` survives an --update from a --no-durable run; a
google-benchmark baseline keeps entries for benchmarks the new run did not
execute, e.g. a filtered re-run). Metrics the new run does produce always
replace their baseline values.

Exit codes: 0 ok (or baseline updated), 1 regression, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"bench_compare: cannot read {path}: {err}")


# Optional serving-replay metrics, gated only when the producing pass ran
# (--no-durable / --no-sharded runs simply omit theirs; the missing-key
# paths in compare() skip them with a note either way). Second element is
# lower_is_better.
SERVING_OPTIONAL_KEYS = (
    ("durable_records_per_sec", False),
    ("sharded_records_per_sec", False),
    ("sharded_speedup", False),
    ("sharded_latency_p99_us", True),
    ("multiproc_records_per_sec", False),
    ("multiproc_speedup", False),
)


def metrics(doc: dict, path: str) -> dict[str, tuple[float, bool]]:
    """Extract {name: (value, lower_is_better)} from either schema."""
    if doc.get("bench") == "serving_replay":
        try:
            out = {"records_per_sec": (float(doc["records_per_sec"]), False)}
        except (KeyError, TypeError, ValueError):
            raise SystemExit(
                f"bench_compare: {path}: serving schema lacks records_per_sec")
        for key, lower_better in SERVING_OPTIONAL_KEYS:
            if key not in doc:
                continue
            try:
                out[key] = (float(doc[key]), lower_better)
            except (TypeError, ValueError):
                raise SystemExit(f"bench_compare: {path}: malformed {key}")
        return out
    if "benchmarks" in doc:
        out: dict[str, tuple[float, bool]] = {}
        for entry in doc["benchmarks"]:
            # Aggregate rows (mean/median/stddev) duplicate the plain runs.
            if entry.get("run_type", "iteration") != "iteration":
                continue
            try:
                out[entry["name"]] = (float(entry["real_time"]), True)
            except (KeyError, TypeError, ValueError):
                raise SystemExit(
                    f"bench_compare: {path}: malformed benchmark entry")
        if not out:
            raise SystemExit(f"bench_compare: {path}: no benchmark entries")
        return out
    raise SystemExit(f"bench_compare: {path}: unrecognized schema")


def compare(baseline: dict[str, tuple[float, bool]],
            current: dict[str, tuple[float, bool]],
            tolerance: float) -> tuple[list[str], list[str]]:
    """Returns (regressions, notes) as printable lines."""
    regressions: list[str] = []
    notes: list[str] = []
    for name, (base_value, lower_better) in sorted(baseline.items()):
        if name not in current:
            notes.append(f"  missing in current run (skipped): {name}")
            continue
        cur_value, _ = current[name]
        if base_value <= 0:
            notes.append(f"  non-positive baseline (skipped): {name}")
            continue
        # Normalize so +ratio always means "worse than baseline".
        if lower_better:
            ratio = cur_value / base_value - 1.0
        else:
            ratio = base_value / cur_value - 1.0 if cur_value > 0 else float("inf")
        line = (f"  {name}: baseline {base_value:,.1f}  current "
                f"{cur_value:,.1f}  ({ratio:+.1%} vs tolerance "
                f"{tolerance:.0%})")
        if ratio > tolerance:
            regressions.append(line)
        elif ratio < -tolerance:
            notes.append("  improved beyond tolerance (consider --update):"
                         + line)
    for name in sorted(set(current) - set(baseline)):
        notes.append(f"  new benchmark without baseline (skipped): {name}")
    return regressions, notes


def merge_for_update(old: dict | None, new: dict) -> dict:
    """The --update document: the new run, plus any optional metrics only
    the old baseline carried.

    * serving schema: top-level keys present only in the old baseline are
      retained (e.g. durable_records_per_sec from a durability-enabled run
      when the new run passed --no-durable); keys the new run produced
      always win.
    * google-benchmark schema: `benchmarks` entries are merged by name —
      new entries first, then old entries whose name the new run lacks
      (a filtered or partial re-run must not silently drop coverage).
    * Missing/unreadable/schema-mismatched old baseline: the new run is
      taken verbatim.
    """
    if old is None:
        return new
    if new.get("bench") == "serving_replay" and old.get("bench") == \
            "serving_replay":
        return {**old, **new}
    if "benchmarks" in new and "benchmarks" in old:
        merged = dict(new)
        names = {e.get("name") for e in new["benchmarks"]}
        merged["benchmarks"] = list(new["benchmarks"]) + [
            e for e in old["benchmarks"] if e.get("name") not in names]
        return merged
    return new


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (bench/baselines/...)")
    parser.add_argument("--current", required=True,
                        help="freshly produced benchmark JSON")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative slowdown (default 0.15)")
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with the current run")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")

    if args.update:
        new = load(args.current)  # validate before clobbering the baseline
        old = load(args.baseline) if os.path.exists(args.baseline) else None
        merged = merge_for_update(old, new)
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=2)
            fh.write("\n")
        carried = sorted(set(map(str, merged)) - set(map(str, new)))
        if "benchmarks" in merged:
            carried += [e["name"] for e in
                        merged["benchmarks"][len(new.get("benchmarks", [])):]]
        print(f"bench_compare: baseline {args.baseline} updated from "
              f"{args.current}"
              + (f" (carried over: {', '.join(carried)})" if carried else ""))
        return 0

    baseline = metrics(load(args.baseline), args.baseline)
    current = metrics(load(args.current), args.current)
    regressions, notes = compare(baseline, current, args.tolerance)
    for note in notes:
        print(note)
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:")
        for line in regressions:
            print(line)
        return 1
    print(f"bench_compare: OK — {len(baseline)} benchmark(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit as err:
        if isinstance(err.code, str):
            print(err.code, file=sys.stderr)
            sys.exit(2)
        raise
