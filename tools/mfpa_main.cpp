// Thin argv wrapper around the mfpa_cli library (see src/cli/cli.hpp).
#include <iostream>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cout << mfpa::cli::usage();
    return 1;
  }
  try {
    const auto cmd = mfpa::cli::parse_command_line(args);
    return mfpa::cli::run_command(cmd, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << mfpa::cli::usage();
    return 1;
  }
}
